//! `mhxq` — command-line multihierarchical XQuery over a document catalog.
//!
//! ```sh
//! mhxq -h lines=lines.xml -h words=words.xml 'for $w in //w return string($w)'
//! mhxq --figure1 'count(/descendant::leaf())'
//! mhxq --doc a -h lines=a1.xml -h words=a2.xml \
//!      --doc b -h lines=b1.xml -h words=b2.xml --stats 'count(//w)'
//! mhxq --doc ms=encoding.xml 'count(/descendant::leaf())'
//! mhxq --figure1 --xslt-mode --query-file q.xq
//! mhxq --figure1 --dump           # print the KyGODDAG outline instead
//! ```
//!
//! Each `--doc ID` starts a new document; subsequent `-h NAME=FILE` flags
//! add its hierarchies (all files of one document must encode the same
//! base text and share the root element — the CMH discipline). The
//! shorthand `--doc ID=FILE` registers a single-hierarchy document in one
//! flag. Without `--doc`, hierarchies build the single document `main`.
//! The query runs against every document through one shared plan cache:
//! it compiles once, no matter how many manuscripts it serves.

use multihier_xquery::corpus::figure1;
use multihier_xquery::goddag::{dot, Goddag, GoddagBuilder};
use multihier_xquery::prelude::{Catalog, EvalOptions};
use multihier_xquery::xquery::AnalyzeMode;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: mhxq [--doc ID[=FILE]]... [-h NAME=FILE]... [--figure1] [--xpath]\n\
         \x20           [--xslt-mode] [--space-separator] [--stats]\n\
         \x20           [--dump | --dot] (QUERY | --query-file FILE)\n\
         \n\
         --doc ID           start document ID; following -h flags attach to it\n\
         --doc ID=FILE      register document ID from a single XML file\n\
         -h NAME=FILE       add hierarchy NAME from XML file FILE (repeatable)\n\
         --figure1          add the built-in Figure-1 manuscript corpus as a document\n\
         --xpath            evaluate QUERY as XPath instead of XQuery\n\
         --xslt-mode        XSLT-2.0 analyze-string semantics (default: paper-compat)\n\
         --space-separator  standard XQuery spacing between atomic items\n\
         --stats            print plan-cache and evaluation counters to stderr after the run\n\
         --dump             print the KyGODDAG text outline(s) and exit\n\
         --dot              print Graphviz DOT of the KyGODDAG(s) and exit\n\
         --query-file FILE  read the query from FILE instead of argv"
    );
    exit(2);
}

fn read_file(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            exit(2);
        }
    }
}

/// One document being assembled from CLI flags.
struct DocSpec {
    id: String,
    hierarchies: Vec<(String, String)>,
    /// Pre-built goddag (`--figure1`), mutually exclusive with
    /// `hierarchies`.
    prebuilt: Option<Goddag>,
}

impl DocSpec {
    fn new(id: impl Into<String>) -> DocSpec {
        DocSpec { id: id.into(), hierarchies: Vec::new(), prebuilt: None }
    }

    fn build(self) -> Goddag {
        if let Some(g) = self.prebuilt {
            return g;
        }
        let mut b = GoddagBuilder::new();
        for (name, src) in self.hierarchies {
            b = b.hierarchy(name, src);
        }
        match b.build() {
            Ok(g) => g,
            Err(e) => {
                eprintln!("building document `{}` failed: {e}", self.id);
                exit(1);
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut docs: Vec<DocSpec> = Vec::new();
    let mut opts = EvalOptions::default();
    let mut use_xpath = false;
    let mut stats = false;
    let mut dump = false;
    let mut dotout = false;
    let mut query: Option<String> = None;

    // The document that bare `-h` flags attach to.
    fn current<'a>(docs: &'a mut Vec<DocSpec>, id: &str) -> &'a mut DocSpec {
        if docs.is_empty() {
            docs.push(DocSpec::new(id));
        }
        docs.last_mut().expect("just ensured non-empty")
    }

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--doc" => {
                i += 1;
                let Some(spec) = args.get(i) else { usage() };
                match spec.split_once('=') {
                    Some((id, path)) => {
                        let mut d = DocSpec::new(id);
                        d.hierarchies.push(("doc".to_string(), read_file(path)));
                        docs.push(d);
                    }
                    None => docs.push(DocSpec::new(spec.as_str())),
                }
            }
            "-h" | "--hierarchy" => {
                i += 1;
                let Some(spec) = args.get(i) else { usage() };
                let Some((name, path)) = spec.split_once('=') else {
                    eprintln!("-h needs NAME=FILE, got `{spec}`");
                    exit(2);
                };
                let src = read_file(path);
                let doc = current(&mut docs, "main");
                if doc.prebuilt.is_some() {
                    eprintln!(
                        "document `{}` is prebuilt (--figure1); start a new one with --doc \
                         before adding hierarchies",
                        doc.id
                    );
                    exit(2);
                }
                doc.hierarchies.push((name.to_string(), src));
            }
            "--figure1" => {
                // A prebuilt corpus is its own document: fill the pending
                // `--doc ID` if one is open and empty, else add `figure1`
                // alongside whatever else was specified — never overwrite
                // hierarchies the user already attached.
                match docs.last_mut() {
                    Some(d) if d.hierarchies.is_empty() && d.prebuilt.is_none() => {
                        d.prebuilt = Some(figure1::goddag())
                    }
                    _ => {
                        let mut d = DocSpec::new("figure1");
                        d.prebuilt = Some(figure1::goddag());
                        docs.push(d);
                    }
                }
            }
            "--xpath" => use_xpath = true,
            "--xslt-mode" => opts.analyze_mode = AnalyzeMode::Xslt,
            "--space-separator" => opts.space_separator = true,
            "--stats" => stats = true,
            "--dump" => dump = true,
            "--dot" => dotout = true,
            "--query-file" => {
                i += 1;
                let Some(path) = args.get(i) else { usage() };
                query = Some(read_file(path));
            }
            "--help" => usage(),
            q if !q.starts_with('-') && query.is_none() => query = Some(q.to_string()),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
        i += 1;
    }

    if docs.is_empty() {
        eprintln!("no documents given (use -h NAME=FILE, --doc, or --figure1)");
        usage();
    }
    for d in &docs {
        if d.prebuilt.is_none() && d.hierarchies.is_empty() {
            eprintln!("document `{}` has no hierarchies (add -h NAME=FILE after --doc)", d.id);
            exit(2);
        }
    }

    let multi = docs.len() > 1;
    let catalog = Catalog::with_options(opts);
    let mut order: Vec<String> = Vec::new();
    for d in docs {
        let id = d.id.clone();
        if order.contains(&id) {
            eprintln!("duplicate document id `{id}` (each --doc needs a distinct id)");
            exit(2);
        }
        catalog.insert(&id, d.build());
        order.push(id);
    }

    if dump || dotout {
        for id in &order {
            if multi {
                println!("=== {id} ===");
            }
            let text = catalog
                .with_document(id, |g| if dump { dot::to_text(g) } else { dot::to_dot(g) })
                .expect("document was just registered");
            print!("{text}");
        }
        return;
    }

    let Some(query) = query else {
        eprintln!("no query given");
        usage();
    };

    let mut failed = false;
    for id in &order {
        let outcome =
            if use_xpath { catalog.xpath(id, &query) } else { catalog.xquery(id, &query) };
        match outcome {
            Ok(out) => {
                if multi {
                    println!("[{id}] {out}");
                } else {
                    println!("{out}");
                }
            }
            // A static (parse/compile) error belongs to the query text,
            // not a document: report it once, unprefixed, and stop.
            Err(e) if e.is_static() => {
                eprintln!("{e}");
                failed = true;
                break;
            }
            Err(e) => {
                eprintln!("{}{e}", if multi { format!("[{id}] ") } else { String::new() });
                failed = true;
            }
        }
    }

    if stats {
        let s = catalog.cache_stats();
        eprintln!(
            "plan cache: {} hits ({} cross-document), {} misses, {} evictions, {} entries",
            s.hits, s.cross_doc_hits, s.misses, s.evictions, s.entries
        );
        let e = catalog.eval_stats();
        eprintln!(
            "evaluation: {} batched steps, {} rewritten steps, {} plan rewrites (optimizer)",
            e.batched_steps, e.rewritten_steps, e.plan_rewrites
        );
    }
    if failed {
        exit(1);
    }
}
