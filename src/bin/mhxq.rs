//! `mhxq` — command-line multihierarchical XQuery.
//!
//! ```sh
//! mhxq -h lines=lines.xml -h words=words.xml 'for $w in //w return string($w)'
//! mhxq --figure1 'count(/descendant::leaf())'
//! mhxq --figure1 --xslt-mode --query-file q.xq
//! mhxq --figure1 --dump           # print the KyGODDAG outline instead
//! ```
//!
//! Each `-h NAME=FILE` adds one hierarchy; all files must encode the same
//! base text and share the root element (CMH discipline).

use multihier_xquery::corpus::figure1;
use multihier_xquery::goddag::{dot, GoddagBuilder};
use multihier_xquery::xquery::{run_query_with, AnalyzeMode, EvalOptions};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: mhxq [-h NAME=FILE]... [--figure1] [--xslt-mode] [--space-separator]\n\
         \x20           [--dump | --dot] (QUERY | --query-file FILE)\n\
         \n\
         -h NAME=FILE       add hierarchy NAME from XML file FILE (repeatable)\n\
         --figure1          use the built-in Figure-1 manuscript corpus\n\
         --xslt-mode        XSLT-2.0 analyze-string semantics (default: paper-compat)\n\
         --space-separator  standard XQuery spacing between atomic items\n\
         --dump             print the KyGODDAG text outline and exit\n\
         --dot              print Graphviz DOT of the KyGODDAG and exit\n\
         --query-file FILE  read the query from FILE instead of argv"
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut hierarchies: Vec<(String, String)> = Vec::new();
    let mut use_figure1 = false;
    let mut opts = EvalOptions::default();
    let mut dump = false;
    let mut dotout = false;
    let mut query: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-h" | "--hierarchy" => {
                i += 1;
                let Some(spec) = args.get(i) else { usage() };
                let Some((name, path)) = spec.split_once('=') else {
                    eprintln!("-h needs NAME=FILE, got `{spec}`");
                    exit(2);
                };
                match std::fs::read_to_string(path) {
                    Ok(src) => hierarchies.push((name.to_string(), src)),
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        exit(2);
                    }
                }
            }
            "--figure1" => use_figure1 = true,
            "--xslt-mode" => opts.analyze_mode = AnalyzeMode::Xslt,
            "--space-separator" => opts.space_separator = true,
            "--dump" => dump = true,
            "--dot" => dotout = true,
            "--query-file" => {
                i += 1;
                let Some(path) = args.get(i) else { usage() };
                match std::fs::read_to_string(path) {
                    Ok(q) => query = Some(q),
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        exit(2);
                    }
                }
            }
            "--help" => usage(),
            q if !q.starts_with('-') && query.is_none() => query = Some(q.to_string()),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
        i += 1;
    }

    let goddag = if use_figure1 {
        figure1::goddag()
    } else if hierarchies.is_empty() {
        eprintln!("no hierarchies given (use -h NAME=FILE or --figure1)");
        usage();
    } else {
        let mut b = GoddagBuilder::new();
        for (name, src) in hierarchies {
            b = b.hierarchy(name, src);
        }
        match b.build() {
            Ok(g) => g,
            Err(e) => {
                eprintln!("building the KyGODDAG failed: {e}");
                exit(1);
            }
        }
    };

    if dump {
        print!("{}", dot::to_text(&goddag));
        return;
    }
    if dotout {
        print!("{}", dot::to_dot(&goddag));
        return;
    }

    let Some(query) = query else {
        eprintln!("no query given");
        usage();
    };
    match run_query_with(&goddag, &query, &opts) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("{e}");
            exit(1);
        }
    }
}
