//! `mhxr` — the shard router: one wire-protocol front end over N `mhxd`
//! backends, with consistent-hash document placement, `--replicas K`
//! replication, and drain-aware failover.
//!
//! ```sh
//! mhxd --listen 127.0.0.1:7081 &
//! mhxd --listen 127.0.0.1:7082 &
//! mhxr --listen 127.0.0.1:7077 \
//!      --shard 127.0.0.1:7081 --shard 127.0.0.1:7082 --replicas 2
//! ```
//!
//! Clients talk to the router exactly as they would to a single `mhxd`
//! (`mhxq --connect`, `server::client::Client`, plain curl). Shutdown is
//! graceful on SIGINT/SIGTERM or `POST /shutdown`: the router stops
//! accepting, completes every response in progress, and exits — the
//! shards keep running.

use multihier_xquery::server::client::Client;
use multihier_xquery::server::{BackendPool, Router, RouterConfig};
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: mhxr [--listen ADDR] [--workers N] [--replicas K] --shard ADDR [--shard ADDR]...\n\
         \n\
         --listen ADDR      bind address (default 127.0.0.1:7077; port 0 = ephemeral)\n\
         --workers N        dispatch worker threads — the concurrent request\n\
         \x20                 execution bound; client connections are evented and\n\
         \x20                 backend connections pooled (default 8)\n\
         --shard ADDR       a backend mhxd address (repeatable; at least one required)\n\
         --replicas K       upload each document to K shards and round-robin reads\n\
         \x20                  (default 1; clamped to the shard count)"
    );
    exit(2);
}

/// SIGINT/SIGTERM land in an atomic flag the owner loop polls — same
/// raw-libc `signal(2)` pattern as `mhxd` (std has no signal API and the
/// build is offline, but every unix target links libc anyway).
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: async-signal-safe.
        REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: *const ()) -> *const ();
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: the handler is an async-signal-safe extern "C" fn; the
        // raw `signal` binding matches the libc prototype on every unix
        // target this builds for.
        unsafe {
            signal(SIGINT, on_signal as *const ());
            signal(SIGTERM, on_signal as *const ());
        }
    }

    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}

    pub fn requested() -> bool {
        false
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut listen = "127.0.0.1:7077".to_string();
    let mut config = RouterConfig::default();
    let mut shards: Vec<String> = Vec::new();
    let mut replicas = 1usize;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => {
                i += 1;
                let Some(addr) = args.get(i) else { usage() };
                listen = addr.clone();
            }
            "--workers" | "--threads" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|v| v.parse().ok()) else { usage() };
                config.workers = n;
            }
            "--shard" => {
                i += 1;
                let Some(addr) = args.get(i) else { usage() };
                shards.push(addr.clone());
            }
            "--replicas" => {
                i += 1;
                let Some(k) = args.get(i).and_then(|v| v.parse().ok()) else { usage() };
                replicas = k;
            }
            "--help" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
        i += 1;
    }

    if shards.is_empty() {
        eprintln!("mhxr: at least one --shard ADDR is required");
        usage();
    }

    // Probe each shard once so an operator typo is visible immediately;
    // a down shard is only a warning — it may come up later, and its
    // documents' replicas cover for it meanwhile.
    for addr in &shards {
        let probe = Client::connect(addr).and_then(|mut c| {
            c.call("GET", "/healthz", None)
                .map(|_| ())
                .map_err(|e| std::io::Error::other(e.to_string()))
        });
        if let Err(e) = probe {
            eprintln!("mhxr: warning: shard {addr} is not answering /healthz yet: {e}");
        }
    }

    let pool = Arc::new(BackendPool::new(shards, replicas));
    sig::install();
    let workers = config.workers;
    let router = match Router::bind(Arc::clone(&pool), &listen, config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot bind {listen}: {e}");
            exit(1);
        }
    };
    eprintln!(
        "mhxr: routing {} shard(s) on http://{} with {workers} workers (evented, replicas={})",
        pool.len(),
        router.addr(),
        pool.replicas(),
    );

    // Owner loop: the event loop cannot join itself, so shutdown — from
    // a signal or from `POST /shutdown` — is performed here.
    while !sig::requested() && !router.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    let health = pool.health_snapshot();
    let healthy = health.iter().filter(|h| h.healthy).count();
    eprintln!("mhxr: draining…");
    router.shutdown();
    eprintln!("mhxr: stopped ({healthy}/{} backends were healthy)", health.len());
}
