//! Reproduction harness: regenerates every figure/query artifact of the
//! paper and prints paper-vs-measured rows (the source of EXPERIMENTS.md).
//!
//! ```sh
//! cargo run --bin repro            # everything
//! cargo run --bin repro fig1       # E1 only
//! cargo run --bin repro fig2       # E2 only
//! cargo run --bin repro queries    # E3–E7
//! cargo run --bin repro baseline   # E8 answer-equality + size shapes
//! ```

use multihier_xquery::baseline::{queries, to_fragmentation, to_milestone};
use multihier_xquery::corpus::figure1;
use multihier_xquery::corpus::{generate, GeneratorConfig};
use multihier_xquery::goddag::dot;
use multihier_xquery::xquery::run_query;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let mut failures = 0usize;
    match which.as_str() {
        "fig1" => fig1(&mut failures),
        "fig2" => fig2(),
        "queries" => queries_repro(&mut failures),
        "baseline" => baseline(&mut failures),
        _ => {
            fig1(&mut failures);
            fig2();
            queries_repro(&mut failures);
            baseline(&mut failures);
        }
    }
    if failures > 0 {
        eprintln!("\n{failures} reproduction check(s) FAILED");
        std::process::exit(1);
    }
    println!("\nall reproduction checks passed");
}

fn check(failures: &mut usize, id: &str, got: &str, want: &str) {
    if got == want {
        println!("[OK ] {id}");
        println!("      {got}");
    } else {
        *failures += 1;
        println!("[FAIL] {id}");
        println!("   got {got}");
        println!("  want {want}");
    }
}

/// E1 — Figure 1: four concurrent encodings, text identity, CMH validity,
/// serializer round-trip.
fn fig1(failures: &mut usize) {
    println!("=== E1: Figure 1 — four encodings of the manuscript fragment ===");
    let cmh = figure1::cmh();
    let docs = figure1::documents();
    match cmh.validate_documents(&docs) {
        Ok(()) => println!("[OK ] all 4 encodings valid against the CMH (root <{}>)", cmh.root()),
        Err(e) => {
            *failures += 1;
            println!("[FAIL] CMH validation: {e}");
        }
    }
    for ((name, src), doc) in figure1::ENCODINGS.iter().zip(&docs) {
        let text = doc.string_value(doc.root_element().expect("root"));
        check(failures, &format!("encoding `{name}` spells S"), &text, figure1::TEXT);
        let round = mhx_xml::to_string(doc);
        if &round != src {
            *failures += 1;
            println!("[FAIL] `{name}` does not round-trip");
        }
    }
    println!();
}

/// E2 — Figure 2: the KyGODDAG structure (16 leaves, labelled nodes).
fn fig2() {
    println!("=== E2: Figure 2 — the KyGODDAG ===");
    let g = figure1::goddag();
    print!("{}", dot::to_text(&g));
    let mut elements = 0usize;
    let mut texts = 0usize;
    for (_, hier) in g.hierarchies() {
        elements += hier.element_count();
        texts += hier.text_count();
    }
    println!(
        "totals: 1 root + {elements} element nodes + {texts} text nodes + {} leaves\n",
        g.leaf_count()
    );
}

/// E3–E7 — every §4 query, paper-vs-measured.
fn queries_repro(failures: &mut usize) {
    println!("=== E3–E7: paper queries ===");
    let g = figure1::goddag();
    for (id, query, expected) in figure1::PAPER_QUERIES {
        match run_query(&g, query) {
            Ok(out) => check(failures, &format!("query {id}"), &out, expected),
            Err(e) => {
                *failures += 1;
                println!("[FAIL] query {id}: {e}");
            }
        }
    }
    println!(
        "\nnote: I.2 uses the word-level predicate and II.1 the child::node()/self::m\n\
         correction (paper print bugs — DESIGN.md §6); III.1 asserts strict\n\
         Definition-1 output, with the paper's inconsistent printed string recorded\n\
         in EXPERIMENTS.md.\n"
    );
}

/// E8 — the three representations answer identically; sizes show the
/// single-document blowup shape.
fn baseline(failures: &mut usize) {
    println!("=== E8: representation comparison (answers + size shape) ===");
    println!(
        "{:>7} {:>8} {:>10} {:>10} {:>10} {:>6}",
        "jitter", "overlap", "separate", "milestone", "fragments", "agree"
    );
    for jitter in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let doc = generate(&GeneratorConfig {
            text_len: 3000,
            hierarchies: 3,
            boundary_jitter: jitter,
            ..Default::default()
        });
        let g = doc.build_goddag();
        let ms = to_milestone(&g, "h0");
        let fr = to_fragmentation(&g, "h0");
        let gd = queries::goddag_overlap_count(&g, "e0", "e1");
        let msc = queries::milestone_overlap_count(&ms, "e0", "h1", "e1");
        let frc = queries::fragmentation_overlap_count(&fr, "e0", "h1", "e1");
        let agree = gd == msc && gd == frc;
        if !agree {
            *failures += 1;
        }
        let sep: usize = doc.encodings.iter().map(|(_, s)| s.len()).sum();
        println!(
            "{:>7.2} {:>8.3} {:>10} {:>10} {:>10} {:>6}",
            jitter,
            doc.overlap_density(),
            sep,
            ms.serialized_len(),
            fr.serialized_len(),
            if agree { "yes" } else { "NO" },
        );
    }
    println!("(timings: cargo bench -p mhx-bench — see EXPERIMENTS.md)");
}
