//! The engine facade: one KyGODDAG, one structural index, one LRU cache of
//! compiled query plans.
//!
//! [`Engine`] is the intended serving entry point: it owns the document,
//! keeps the [`StructIndex`] current across hierarchy mutations, and caches
//! the parse/compile work per query text so repeated evaluation of the same
//! query re-parses nothing. Both query languages go through it — XPath
//! plans are [`CompiledXPath`] values, XQuery plans are parsed [`QExpr`]
//! trees whose path steps were compiled to [`mhx_xpath::StepStrategy`]s at
//! parse time. Plans are document-independent (they name axes, tests and
//! strategies, never node ids), so hierarchy mutations invalidate only the
//! index, never the plan cache.

use mhx_goddag::{Goddag, StructIndex};
use mhx_xpath::{CompiledXPath, Context, Value};
use mhx_xquery::{parse_query, EvalOptions, QExpr};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Error from either engine, unified for facade callers.
#[derive(Debug, Clone)]
pub struct EngineError(String);

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for EngineError {}

impl From<mhx_xpath::XPathError> for EngineError {
    fn from(e: mhx_xpath::XPathError) -> EngineError {
        EngineError(e.to_string())
    }
}

impl From<mhx_xquery::XQueryError> for EngineError {
    fn from(e: mhx_xquery::XQueryError) -> EngineError {
        EngineError(e.to_string())
    }
}

impl From<mhx_goddag::GoddagError> for EngineError {
    fn from(e: mhx_goddag::GoddagError) -> EngineError {
        EngineError(e.to_string())
    }
}

/// A cached, compiled query plan. `Arc` so cache hits hand out a handle
/// without cloning the plan and eviction never invalidates a running query.
#[derive(Debug, Clone)]
enum CachedPlan {
    XPath(Arc<CompiledXPath>),
    XQuery(Arc<QExpr>),
}

/// Plan-cache counters (cumulative since [`Engine`] construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub entries: usize,
}

/// Least-recently-used plan cache keyed by query text. Recency is a
/// monotonic stamp per entry; eviction scans for the minimum — O(capacity),
/// trivial next to a parse, and free of list bookkeeping.
struct PlanCache {
    capacity: usize,
    stamp: u64,
    map: HashMap<String, (u64, CachedPlan)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PlanCache {
    fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity: capacity.max(1),
            stamp: 0,
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn get(&mut self, key: &str) -> Option<CachedPlan> {
        self.stamp += 1;
        match self.map.get_mut(key) {
            Some((stamp, plan)) => {
                *stamp = self.stamp;
                self.hits += 1;
                Some(plan.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: String, plan: CachedPlan) {
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) =
                self.map.iter().min_by_key(|(_, (stamp, _))| *stamp).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                self.evictions += 1;
            }
        }
        self.stamp += 1;
        self.map.insert(key, (self.stamp, plan));
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len(),
        }
    }
}

/// Default plan-cache capacity (distinct query texts kept compiled).
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

/// The query engine facade. See the module docs.
pub struct Engine {
    g: Goddag,
    index: StructIndex,
    opts: EvalOptions,
    cache: PlanCache,
}

impl Engine {
    /// Wrap a document; builds the structural index eagerly.
    pub fn new(g: Goddag) -> Engine {
        Engine::with_options(g, EvalOptions::default())
    }

    /// [`Engine::new`] with XQuery evaluation options.
    pub fn with_options(g: Goddag, opts: EvalOptions) -> Engine {
        let index = StructIndex::build(&g);
        Engine { g, index, opts, cache: PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY) }
    }

    /// Override the plan-cache capacity (min 1).
    pub fn with_plan_cache_capacity(mut self, capacity: usize) -> Engine {
        self.cache = PlanCache::new(capacity);
        self
    }

    pub fn goddag(&self) -> &Goddag {
        &self.g
    }

    /// The current structural index (always in sync with the goddag).
    pub fn index(&self) -> &StructIndex {
        &self.index
    }

    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Add a base hierarchy to the document; rebuilds the index. Compiled
    /// plans stay valid (they are document-independent).
    pub fn add_hierarchy(&mut self, name: &str, xml: &str) -> Result<(), EngineError> {
        let doc = mhx_xml::parse(xml).map_err(|e| EngineError(e.to_string()))?;
        self.g.add_document_hierarchy(name, &doc)?;
        self.index = StructIndex::build(&self.g);
        Ok(())
    }

    fn ensure_index(&mut self) {
        if !self.index.is_current(&self.g) {
            self.index = StructIndex::build(&self.g);
        }
    }

    /// Cache key namespaced by language: the same source text is a valid
    /// query in both languages (every XPath expression parses as XQuery),
    /// and the two compile to different plans. `\0` cannot occur in query
    /// text, so the prefix is collision-free.
    fn cache_key(lang: &str, src: &str) -> String {
        let mut key = String::with_capacity(lang.len() + 1 + src.len());
        key.push_str(lang);
        key.push('\0');
        key.push_str(src);
        key
    }

    /// Evaluate an XPath expression from the root, through the cached
    /// compiled plan and the structural index.
    pub fn xpath(&mut self, src: &str) -> Result<Value, EngineError> {
        let key = Engine::cache_key("xpath", src);
        let plan = match self.cache.get(&key) {
            Some(CachedPlan::XPath(p)) => p,
            Some(CachedPlan::XQuery(_)) | None => {
                let p = Arc::new(CompiledXPath::compile(src)?);
                self.cache.insert(key, CachedPlan::XPath(Arc::clone(&p)));
                p
            }
        };
        self.ensure_index();
        let ctx = Context::new(mhx_goddag::NodeId::Root);
        Ok(plan.evaluate(&self.g, &self.index, &ctx)?)
    }

    /// Run an XQuery query and serialize the result (paper-style), through
    /// the cached parse and the structural index.
    pub fn xquery(&mut self, src: &str) -> Result<String, EngineError> {
        let key = Engine::cache_key("xquery", src);
        let plan = match self.cache.get(&key) {
            Some(CachedPlan::XQuery(p)) => p,
            Some(CachedPlan::XPath(_)) | None => {
                let p = Arc::new(parse_query(src)?);
                self.cache.insert(key, CachedPlan::XQuery(Arc::clone(&p)));
                p
            }
        };
        self.ensure_index();
        Ok(mhx_xquery::run_parsed_with_index(&self.g, &self.index, &plan, &self.opts)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhx_goddag::GoddagBuilder;

    fn two_hierarchies() -> Goddag {
        GoddagBuilder::new()
            .hierarchy(
                "lines",
                "<r><line>gesceaftum unawendendne sin</line><line>gallice sibbe gecynde þa</line></r>",
            )
            .hierarchy(
                "words",
                "<r><w>gesceaftum</w> <w>unawendendne</w> <w>singallice</w> <w>sibbe</w> \
                 <w>gecynde</w> <w>þa</w></r>",
            )
            .build()
            .unwrap()
    }

    #[test]
    fn repeated_query_hits_plan_cache() {
        let mut e = Engine::new(two_hierarchies());
        let q = "for $l in /descendant::line[overlapping::w] return string($l)";
        let first = e.xquery(q).unwrap();
        assert_eq!(e.cache_stats().misses, 1);
        assert_eq!(e.cache_stats().hits, 0);
        for _ in 0..5 {
            assert_eq!(e.xquery(q).unwrap(), first);
        }
        let stats = e.cache_stats();
        assert_eq!(stats.misses, 1, "no re-parse after the first evaluation");
        assert_eq!(stats.hits, 5);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn xpath_and_xquery_share_the_cache() {
        let mut e = Engine::new(two_hierarchies());
        let v = e.xpath("/descendant::w[3]").unwrap();
        assert_eq!(v.to_str(e.goddag()), "singallice");
        e.xpath("/descendant::w[3]").unwrap();
        e.xquery("count(/descendant::w)").unwrap();
        let stats = e.cache_stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn same_text_in_both_languages_does_not_collide() {
        let mut e = Engine::new(two_hierarchies());
        // Valid in both languages; the plans differ.
        let q = "count(/descendant::w)";
        assert_eq!(e.xquery(q).unwrap(), "6");
        assert_eq!(e.xpath(q).unwrap(), Value::Num(6.0));
        assert_eq!(e.xquery(q).unwrap(), "6");
        assert_eq!(e.xpath(q).unwrap(), Value::Num(6.0));
        let stats = e.cache_stats();
        assert_eq!(stats.entries, 2, "one entry per language");
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 2, "second round is all cache hits");
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut e = Engine::new(two_hierarchies()).with_plan_cache_capacity(2);
        e.xpath("/descendant::w[1]").unwrap();
        e.xpath("/descendant::w[2]").unwrap();
        // Touch the first so the second is now least recent.
        e.xpath("/descendant::w[1]").unwrap();
        e.xpath("/descendant::w[3]").unwrap();
        let stats = e.cache_stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        // The touched plan survived; the untouched one was evicted.
        e.xpath("/descendant::w[1]").unwrap();
        assert_eq!(e.cache_stats().hits, 2);
        e.xpath("/descendant::w[2]").unwrap();
        assert_eq!(e.cache_stats().misses, 4, "evicted plan re-compiles");
    }

    #[test]
    fn analyze_string_queries_leave_engine_consistent() {
        let mut e = Engine::new(two_hierarchies());
        let q = "for $m in analyze-string(/, 'gallice') return string($m)";
        let out = e.xquery(q).unwrap();
        assert!(out.contains("gallice"), "match materialized: {out}");
        // Temporary hierarchies died with the evaluator: the engine's own
        // goddag and index are untouched and still current.
        assert_eq!(e.goddag().hierarchy_count(), 2);
        assert!(e.index().is_current(e.goddag()));
        assert_eq!(e.xquery(q).unwrap(), out);
    }

    #[test]
    fn add_hierarchy_keeps_plans_and_refreshes_index() {
        let mut e = Engine::new(two_hierarchies());
        let q = "/descendant::res";
        let Value::Nodes(none) = e.xpath(q).unwrap() else { panic!() };
        assert!(none.is_empty());
        e.add_hierarchy(
            "restorations",
            "<r><res>gesceaftum una</res>wendendne s<res>in</res><res>gallice sibbe gecyn</res>de þa</r>",
        )
        .unwrap();
        let Value::Nodes(found) = e.xpath(q).unwrap() else { panic!() };
        assert_eq!(found.len(), 3);
        let stats = e.cache_stats();
        assert_eq!(stats.hits, 1, "compiled plan survived the hierarchy mutation");
    }

    #[test]
    fn bad_queries_surface_errors() {
        let mut e = Engine::new(two_hierarchies());
        assert!(e.xpath("/descendant::").is_err());
        assert!(e.xquery("for $x in").is_err());
        assert!(e.add_hierarchy("words", "<r>nope</r>").is_err());
    }
}
