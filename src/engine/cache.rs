//! The shared plan cache.
//!
//! One LRU cache of compiled plans serves every document in a
//! [`Catalog`](crate::engine::Catalog): plans are document-independent
//! (they name axes, tests and strategies, never node ids), so
//! `count(/descendant::w)` compiles once and serves every manuscript. The
//! cache is keyed by `(language, query text)` — the same source text is a
//! valid query in both languages and compiles to different plans, so the
//! two never collide. Interior mutability (a [`Mutex`] around the map and
//! counters) lets lookups run from `&self` query paths.

use crate::engine::error::QueryLang;
use mhx_xpath::CompiledXPath;
use mhx_xquery::CompiledXQuery;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

/// A cached, compiled query plan. `Arc` so cache hits hand out a handle
/// without cloning the plan and eviction never invalidates a running
/// query. Both variants carry the as-written *and* the optimized plan, so
/// one entry serves every `optimize` knob setting (the knob is evaluation
/// state, never part of the cache key).
#[derive(Debug, Clone)]
pub(crate) enum CachedPlan {
    XPath(Arc<CompiledXPath>),
    XQuery(Arc<CompiledXQuery>),
}

/// Plan-cache counters, cumulative since construction. Resizing the cache
/// preserves them (and the surviving entries).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Hits where the requesting document differs from the document whose
    /// query first compiled the entry — the cross-document sharing the
    /// catalog exists for.
    pub cross_doc_hits: u64,
    /// Current number of cached plans.
    pub entries: usize,
}

struct Entry {
    stamp: u64,
    /// Document the compiling query ran against (None for `prepare`d
    /// queries, which are document-free).
    origin_doc: Option<String>,
    plan: CachedPlan,
}

struct Inner {
    capacity: usize,
    stamp: u64,
    map: HashMap<(QueryLang, String), Entry>,
    hits: u64,
    misses: u64,
    evictions: u64,
    cross_doc_hits: u64,
}

impl Inner {
    /// Evict least-recently-used entries until `len <= capacity`. Recency
    /// is a monotonic stamp per entry; eviction scans for the minimum —
    /// O(capacity), trivial next to a parse.
    fn shrink_to_capacity(&mut self) {
        while self.map.len() > self.capacity {
            if let Some(oldest) =
                self.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                self.evictions += 1;
            } else {
                break;
            }
        }
    }
}

/// The `Send + Sync` LRU plan cache shared across a catalog's documents.
pub(crate) struct SharedPlanCache {
    inner: Mutex<Inner>,
}

impl SharedPlanCache {
    pub(crate) fn new(capacity: usize) -> SharedPlanCache {
        SharedPlanCache {
            inner: Mutex::new(Inner {
                capacity: capacity.max(1),
                stamp: 0,
                map: HashMap::new(),
                hits: 0,
                misses: 0,
                evictions: 0,
                cross_doc_hits: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic mid-lookup leaves only counters/LRU stamps possibly
        // stale, never a dangling plan; recover rather than propagate.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Look up a plan, attributing the hit to `doc` for the cross-document
    /// counter.
    pub(crate) fn get(&self, lang: QueryLang, src: &str, doc: Option<&str>) -> Option<CachedPlan> {
        let mut inner = self.lock();
        inner.stamp += 1;
        let stamp = inner.stamp;
        // Tuple keys have no borrowed-key lookup; a short-lived owned key
        // is fine next to a parse.
        let key = (lang, src.to_string());
        match inner.map.get_mut(&key) {
            Some(entry) => {
                entry.stamp = stamp;
                let cross = match (&entry.origin_doc, doc) {
                    (Some(origin), Some(d)) => origin != d,
                    _ => false,
                };
                let plan = entry.plan.clone();
                inner.hits += 1;
                if cross {
                    inner.cross_doc_hits += 1;
                }
                Some(plan)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Insert a freshly compiled plan, recording which document compiled it.
    pub(crate) fn insert(&self, lang: QueryLang, src: &str, doc: Option<&str>, plan: CachedPlan) {
        let mut inner = self.lock();
        inner.stamp += 1;
        let stamp = inner.stamp;
        inner.map.insert(
            (lang, src.to_string()),
            Entry { stamp, origin_doc: doc.map(str::to_string), plan },
        );
        inner.shrink_to_capacity();
    }

    /// Change the capacity, keeping the most recent entries up to the new
    /// capacity and all cumulative counters (trimmed entries count as
    /// evictions).
    pub(crate) fn set_capacity(&self, capacity: usize) {
        let mut inner = self.lock();
        inner.capacity = capacity.max(1);
        inner.shrink_to_capacity();
    }

    pub(crate) fn capacity(&self) -> usize {
        self.lock().capacity
    }

    pub(crate) fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            cross_doc_hits: inner.cross_doc_hits,
            entries: inner.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> CachedPlan {
        CachedPlan::XPath(Arc::new(CompiledXPath::compile("/descendant::w").unwrap()))
    }

    #[test]
    fn resize_preserves_entries_and_counters() {
        let c = SharedPlanCache::new(8);
        for i in 0..4 {
            let src = format!("/descendant::w[{i}]");
            assert!(c.get(QueryLang::XPath, &src, Some("a")).is_none());
            c.insert(QueryLang::XPath, &src, Some("a"), plan());
        }
        assert_eq!(c.stats().entries, 4);
        assert_eq!(c.stats().misses, 4);

        // Shrinking to 2 keeps the two most recent entries and the stats.
        c.set_capacity(2);
        let s = c.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.misses, 4, "cumulative counters survive the resize");
        assert_eq!(s.evictions, 2, "trimmed entries count as evictions");
        assert!(c.get(QueryLang::XPath, "/descendant::w[3]", Some("a")).is_some());
        assert!(c.get(QueryLang::XPath, "/descendant::w[0]", Some("a")).is_none());

        // Growing never drops anything.
        c.set_capacity(16);
        assert_eq!(c.stats().entries, 2);
        assert_eq!(c.capacity(), 16);
    }

    #[test]
    fn cross_document_hits_are_attributed() {
        let c = SharedPlanCache::new(4);
        c.insert(QueryLang::XPath, "/descendant::w", Some("ms-a"), plan());
        assert!(c.get(QueryLang::XPath, "/descendant::w", Some("ms-a")).is_some());
        assert_eq!(c.stats().cross_doc_hits, 0);
        assert!(c.get(QueryLang::XPath, "/descendant::w", Some("ms-b")).is_some());
        assert_eq!(c.stats().cross_doc_hits, 1);
        // Document-free (prepared) lookups never count as cross-document.
        assert!(c.get(QueryLang::XPath, "/descendant::w", None).is_some());
        assert_eq!(c.stats().cross_doc_hits, 1);
        assert_eq!(c.stats().hits, 3);
    }

    #[test]
    fn languages_do_not_collide() {
        let c = SharedPlanCache::new(4);
        c.insert(QueryLang::XPath, "count(/descendant::w)", None, plan());
        assert!(c.get(QueryLang::XQuery, "count(/descendant::w)", None).is_none());
        assert!(c.get(QueryLang::XPath, "count(/descendant::w)", None).is_some());
    }
}
