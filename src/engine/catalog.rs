//! The multi-document serving facade.
//!
//! A [`Catalog`] maps document ids to independent documents (KyGODDAG +
//! structural index) behind **one plan cache shared across all documents**.
//! Everything is interior-mutable: queries take `&self`, per-document state
//! sits behind `RwLock`s, and `Catalog` is `Send + Sync`, so one catalog
//! can serve concurrent queries against different (or the same) documents
//! from many threads.
//!
//! Lock discipline: a query clones the `Arc<DocEntry>` out of the registry
//! (released immediately), then holds that document's goddag read lock for
//! the duration of evaluation — so a concurrent [`Catalog::add_hierarchy`]
//! on the *same* document waits, while queries on *other* documents never
//! contend. The index slot is a lazily rebuilt `Arc` snapshot: readers
//! validate it against the goddag version and rebuild under the slot's
//! write lock when a mutation invalidated it.

use crate::engine::cache::{CacheStats, CachedPlan, SharedPlanCache};
use crate::engine::error::{
    xpath_eval_error, xpath_parse_error, xquery_error, EngineError, QueryLang,
};
use crate::engine::result::QueryOutcome;
use crate::engine::session::{Prepared, Session};
use mhx_goddag::{Goddag, NodeId, StructIndex};
use mhx_xpath::plan::EvalCounters;
use mhx_xpath::{CompiledXPath, Context};
use mhx_xquery::ast::Clause;
use mhx_xquery::{parse_query, CompiledXQuery, EvalOptions, QExpr};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// Cumulative per-catalog evaluation counters (both query languages), the
/// runtime complement of the compile-time [`CacheStats`]. Snapshot via
/// [`Catalog::eval_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Path steps resolved set-at-a-time (one index pass for the whole
    /// context set): predicate-free steps and optimizer-routed
    /// position-free predicated steps.
    pub batched_steps: u64,
    /// Path steps evaluated from a plan the optimizer rewrote (fused,
    /// reordered, or batch-routed). Grows only while the executing
    /// connection's `optimize` knob is on.
    pub rewritten_steps: u64,
    /// Optimizer rewrites in the plans executed (compile-time counts,
    /// summed per execution). 0-increments mean the plans were already
    /// optimal or the knob was off.
    pub plan_rewrites: u64,
    /// Predicated steps where at least one predicate resolved through an
    /// existential first-witness probe (`StructIndex::axis_exists`)
    /// instead of materializing the axis.
    pub early_exit_steps: u64,
    /// Context-independent predicates the evaluator hoisted: computed
    /// once per step instead of once per candidate.
    pub hoisted_preds: u64,
    /// `descendant::a/descendant::b` pairs evaluated as one containment
    /// -chain merge join over the structural index.
    pub chain_joins: u64,
}

impl EvalStats {
    /// Fold another snapshot's counters into this one — how a connection
    /// accumulates totals across its short-lived per-request sessions.
    pub fn absorb(&mut self, other: &EvalStats) {
        self.batched_steps += other.batched_steps;
        self.rewritten_steps += other.rewritten_steps;
        self.plan_rewrites += other.plan_rewrites;
        self.early_exit_steps += other.early_exit_steps;
        self.hoisted_preds += other.hoisted_preds;
        self.chain_joins += other.chain_joins;
    }
}

/// Atomic accumulator behind [`EvalStats`] snapshots. The catalog owns one
/// for its totals; every [`Session`] owns another, so per-connection
/// counters come for free on the same evaluation path.
#[derive(Default)]
pub(crate) struct EvalTotals {
    batched_steps: AtomicU64,
    rewritten_steps: AtomicU64,
    plan_rewrites: AtomicU64,
    early_exit_steps: AtomicU64,
    hoisted_preds: AtomicU64,
    chain_joins: AtomicU64,
}

impl EvalTotals {
    fn add(&self, delta: EvalStats) {
        self.batched_steps.fetch_add(delta.batched_steps, Ordering::Relaxed);
        self.rewritten_steps.fetch_add(delta.rewritten_steps, Ordering::Relaxed);
        self.plan_rewrites.fetch_add(delta.plan_rewrites, Ordering::Relaxed);
        self.early_exit_steps.fetch_add(delta.early_exit_steps, Ordering::Relaxed);
        self.hoisted_preds.fetch_add(delta.hoisted_preds, Ordering::Relaxed);
        self.chain_joins.fetch_add(delta.chain_joins, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> EvalStats {
        EvalStats {
            batched_steps: self.batched_steps.load(Ordering::Relaxed),
            rewritten_steps: self.rewritten_steps.load(Ordering::Relaxed),
            plan_rewrites: self.plan_rewrites.load(Ordering::Relaxed),
            early_exit_steps: self.early_exit_steps.load(Ordering::Relaxed),
            hoisted_preds: self.hoisted_preds.load(Ordering::Relaxed),
            chain_joins: self.chain_joins.load(Ordering::Relaxed),
        }
    }
}

/// RAII in-flight marker: increments on entry to evaluation, decrements on
/// every exit path (including panics), so [`Catalog::drain`] can wait for
/// a true zero.
struct InFlight<'a>(&'a AtomicU64);

impl<'a> InFlight<'a> {
    fn enter(counter: &'a AtomicU64) -> InFlight<'a> {
        counter.fetch_add(1, Ordering::SeqCst);
        InFlight(counter)
    }
}

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Default plan-cache capacity (distinct query texts kept compiled).
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

/// The in-RAM half of a document: its goddag and the lazily maintained
/// structural index snapshot. Dropped on eviction, rebuilt from the
/// snapshot file on the next query.
pub(crate) struct DocBody {
    g: Goddag,
    index: RwLock<Option<Arc<StructIndex>>>,
}

impl DocBody {
    fn new(g: Goddag, index: Arc<StructIndex>) -> DocBody {
        DocBody { g, index: RwLock::new(Some(index)) }
    }

    /// A current index snapshot (the caller holds the entry's body read
    /// lock, so the goddag cannot move under us while we validate/rebuild).
    fn current_index(&self) -> Arc<StructIndex> {
        {
            let slot = self.index.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(idx) = slot.as_ref() {
                if idx.is_current(&self.g) {
                    return Arc::clone(idx);
                }
            }
        }
        let mut slot = self.index.write().unwrap_or_else(PoisonError::into_inner);
        // Double-check: another reader may have rebuilt while we waited.
        if let Some(idx) = slot.as_ref() {
            if idx.is_current(&self.g) {
                return Arc::clone(idx);
            }
        }
        let idx = Arc::new(StructIndex::build(&self.g));
        *slot = Some(Arc::clone(&idx));
        idx
    }
}

/// One registered document. The body is optional: `None` means the
/// document is evicted — known to the catalog, resident only on disk,
/// reloaded lazily on the next query.
pub(crate) struct DocEntry {
    body: RwLock<Option<DocBody>>,
    /// Monotonic catalog tick of the last query/load — the LRU key for
    /// memory-budget eviction.
    last_used: AtomicU64,
    /// Snapshot file size; 0 when the document is not persisted (plain
    /// [`Catalog::insert`]). Only persisted documents are evictable, and
    /// this doubles as the resident-set size estimate.
    snapshot_bytes: AtomicU64,
    /// A snapshot load is reading the disk right now.
    loading: AtomicBool,
    /// Never been resident in this process — the next load is a cold
    /// start, not eviction churn.
    cold: AtomicBool,
}

impl DocEntry {
    fn new(g: Goddag) -> DocEntry {
        // Build eagerly: registration is the natural place to pay the
        // one-time cost, and it keeps first-query latency flat.
        let index = Arc::new(StructIndex::build(&g));
        DocEntry::resident(g, index, 0)
    }

    fn resident(g: Goddag, index: Arc<StructIndex>, snapshot_bytes: u64) -> DocEntry {
        DocEntry {
            body: RwLock::new(Some(DocBody::new(g, index))),
            last_used: AtomicU64::new(0),
            snapshot_bytes: AtomicU64::new(snapshot_bytes),
            loading: AtomicBool::new(false),
            cold: AtomicBool::new(false),
        }
    }

    /// A known-on-disk document with no RAM body yet (boot replay, or a
    /// snapshot discovered on a registry miss).
    fn evicted(snapshot_bytes: u64) -> DocEntry {
        DocEntry {
            body: RwLock::new(None),
            last_used: AtomicU64::new(0),
            snapshot_bytes: AtomicU64::new(snapshot_bytes),
            loading: AtomicBool::new(false),
            cold: AtomicBool::new(true),
        }
    }
}

/// Where a document currently lives (reported by `/documents`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// Goddag + index in RAM, queries answer directly.
    Resident,
    /// Only the snapshot file exists; the next query reloads it.
    Evicted,
    /// A snapshot load is in progress.
    Loading,
}

impl Residency {
    /// Stable lowercase wire name.
    pub fn name(self) -> &'static str {
        match self {
            Residency::Resident => "resident",
            Residency::Evicted => "evicted",
            Residency::Loading => "loading",
        }
    }
}

/// Persistent-store counters, snapshot via [`Catalog::store_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// A data directory is attached.
    pub attached: bool,
    /// The resident-set byte cap, if any.
    pub budget: Option<u64>,
    /// Snapshot loads (cold starts + eviction-churn reloads).
    pub loads: u64,
    /// Documents evicted to enforce the memory budget.
    pub evictions: u64,
    /// Loads of documents never previously resident in this process.
    pub cold_start_hits: u64,
    /// Total bytes across all snapshot files.
    pub bytes_on_disk: u64,
    /// Documents currently resident in RAM.
    pub resident_docs: u64,
    /// Snapshot-size estimate of the resident persisted set (what the
    /// budget is enforced against).
    pub resident_bytes: u64,
}

/// The catalog's persistent-store binding (set once by
/// [`Catalog::attach_store`]).
struct StoreBinding {
    store: mhx_store::DocStore,
    budget: Option<u64>,
    loads: AtomicU64,
    evictions: AtomicU64,
    cold_start_hits: AtomicU64,
}

/// The multi-document query facade. See the [module docs](self).
///
/// ```
/// use multihier_xquery::prelude::*;
///
/// fn manuscript(line_break: usize) -> Goddag {
///     let text = "gesceaftum unawendendne singallice";
///     GoddagBuilder::new()
///         .hierarchy(
///             "lines",
///             format!("<r><line>{}</line><line>{}</line></r>", &text[..line_break], &text[line_break..]),
///         )
///         .hierarchy("words", "<r><w>gesceaftum</w> <w>unawendendne</w> <w>singallice</w></r>")
///         .build()
///         .unwrap()
/// }
///
/// let catalog = Catalog::new();
/// catalog.insert("ms-a", manuscript(14));
/// catalog.insert("ms-b", manuscript(30));
///
/// // One query text, two documents, one compilation: the plan cache is
/// // shared because plans are document-independent.
/// let q = "for $w in /descendant::w[overlapping::line] return string($w)";
/// assert_eq!(catalog.xquery("ms-a", q).unwrap().serialize(), "unawendendne");
/// assert_eq!(catalog.xquery("ms-b", q).unwrap().serialize(), "singallice");
/// let stats = catalog.cache_stats();
/// assert_eq!(stats.misses, 1);
/// assert_eq!(stats.cross_doc_hits, 1);
/// ```
pub struct Catalog {
    docs: RwLock<BTreeMap<String, Arc<DocEntry>>>,
    cache: SharedPlanCache,
    opts: EvalOptions,
    eval_totals: EvalTotals,
    shutting_down: AtomicBool,
    in_flight: AtomicU64,
    store: std::sync::OnceLock<StoreBinding>,
    /// Monotonic logical clock for LRU last-used stamps.
    tick: AtomicU64,
}

impl Default for Catalog {
    fn default() -> Catalog {
        Catalog::new()
    }
}

impl Catalog {
    /// An empty catalog with default evaluation options and plan-cache
    /// capacity.
    pub fn new() -> Catalog {
        Catalog::with_options(EvalOptions::default())
    }

    /// [`Catalog::new`] with catalog-wide default XQuery evaluation
    /// options (sessions can override per connection).
    pub fn with_options(opts: EvalOptions) -> Catalog {
        Catalog {
            docs: RwLock::new(BTreeMap::new()),
            cache: SharedPlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY),
            opts,
            eval_totals: EvalTotals::default(),
            shutting_down: AtomicBool::new(false),
            in_flight: AtomicU64::new(0),
            store: std::sync::OnceLock::new(),
            tick: AtomicU64::new(0),
        }
    }

    /// Builder-style capacity override. Preserves any already-cached plans
    /// up to the new capacity and all cumulative counters — resizing never
    /// silently discards a warm cache.
    pub fn with_plan_cache_capacity(self, capacity: usize) -> Catalog {
        self.set_plan_cache_capacity(capacity);
        self
    }

    /// Change the plan-cache capacity in place (min 1), keeping the most
    /// recently used entries and the cumulative stats.
    pub fn set_plan_cache_capacity(&self, capacity: usize) {
        self.cache.set_capacity(capacity);
    }

    /// Current plan-cache capacity.
    pub fn plan_cache_capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// The catalog-wide default evaluation options.
    pub fn options(&self) -> &EvalOptions {
        &self.opts
    }

    /// Shared plan-cache counters (cumulative across all documents).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Cumulative evaluation counters (batched / rewritten steps) across
    /// all documents and both query languages.
    pub fn eval_stats(&self) -> EvalStats {
        self.eval_totals.snapshot()
    }

    // ------------------------------------------------------------------
    // Graceful shutdown
    // ------------------------------------------------------------------

    /// Start draining: queries already evaluating run to completion, but
    /// every subsequent query, prepare, session-open, and
    /// [`Catalog::add_hierarchy`] returns [`EngineError::ShuttingDown`].
    /// Registry surgery ([`Catalog::insert`] / [`Catalog::remove`]) stays
    /// available — those are infallible owner-side operations, and a
    /// serving front end gates client-driven uploads itself (the `mhxd`
    /// upload endpoint answers 503 while draining). Irreversible by
    /// design — a draining catalog is on its way out of service.
    ///
    /// The flag + in-flight counter are what a serving front end's
    /// ctrl-c/SIGTERM path needs to stop without dropping a request
    /// mid-response: flip the flag, then [`Catalog::drain`].
    pub fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
    }

    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Number of evaluations currently running.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Wait until no evaluation is in flight (true) or `timeout` elapses
    /// (false). Typically called after [`Catalog::begin_shutdown`]; without
    /// the flag set, new arrivals can keep the counter nonzero forever.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.in_flight() > 0 {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    /// The common refusal check: every serving entry point calls this
    /// *after* registering in-flight state (or before doing any work at
    /// all), so `begin_shutdown → drain` observes a consistent world.
    fn check_open(&self) -> Result<(), EngineError> {
        if self.is_shutting_down() {
            return Err(EngineError::ShuttingDown);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Document registry
    // ------------------------------------------------------------------

    fn registry(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Arc<DocEntry>>> {
        self.docs.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Register (or replace) a document under `id`. Builds its structural
    /// index eagerly. Cached plans are unaffected — they are
    /// document-independent.
    pub fn insert(&self, id: impl Into<String>, g: Goddag) {
        let entry = Arc::new(DocEntry::new(g));
        self.docs.write().unwrap_or_else(PoisonError::into_inner).insert(id.into(), entry);
    }

    /// Remove a document — registry entry and snapshot file both. Running
    /// queries against it finish on their own snapshot; subsequent
    /// queries get [`EngineError::UnknownDocument`].
    pub fn remove(&self, id: &str) -> bool {
        let known = self.docs.write().unwrap_or_else(PoisonError::into_inner).remove(id).is_some();
        let on_disk = match self.store.get() {
            Some(b) => b.store.remove(id).unwrap_or(false),
            None => false,
        };
        known || on_disk
    }

    pub fn contains(&self, id: &str) -> bool {
        self.registry().contains_key(id)
    }

    /// Registered document ids, sorted.
    pub fn document_ids(&self) -> Vec<String> {
        self.registry().keys().cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.registry().len()
    }

    pub fn is_empty(&self) -> bool {
        self.registry().is_empty()
    }

    /// Resolve a document entry: registry first, then — with a store
    /// attached — a snapshot-file probe, so `UnknownDocument` is only
    /// returned after a true store miss.
    fn entry(&self, id: &str) -> Result<Arc<DocEntry>, EngineError> {
        if let Some(e) = self.registry().get(id).cloned() {
            return Ok(e);
        }
        if let Some(b) = self.store.get() {
            if let Some(size) = b.store.snapshot_size(id) {
                let mut docs = self.docs.write().unwrap_or_else(PoisonError::into_inner);
                let e =
                    docs.entry(id.to_string()).or_insert_with(|| Arc::new(DocEntry::evicted(size)));
                return Ok(Arc::clone(e));
            }
        }
        Err(EngineError::unknown_document(id))
    }

    // ------------------------------------------------------------------
    // Persistent store
    // ------------------------------------------------------------------

    /// Attach a snapshot data directory (at most once per catalog).
    /// Existing snapshots are registered immediately as evicted entries —
    /// boot replay is an `open`, not a reparse; bodies load lazily on
    /// first query. `budget` caps the resident persisted set in bytes:
    /// when exceeded, least-recently-queried documents drop their RAM
    /// body (the snapshot file stays). Returns the replayed ids.
    pub fn attach_store(
        &self,
        dir: impl Into<std::path::PathBuf>,
        budget: Option<u64>,
    ) -> Result<Vec<String>, EngineError> {
        let store =
            mhx_store::DocStore::open(dir).map_err(|e| EngineError::store(e.to_string()))?;
        let listing = store.list().map_err(|e| EngineError::store(e.to_string()))?;
        let binding = StoreBinding {
            store,
            budget,
            loads: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            cold_start_hits: AtomicU64::new(0),
        };
        if self.store.set(binding).is_err() {
            return Err(EngineError::store("a data directory is already attached"));
        }
        let mut docs = self.docs.write().unwrap_or_else(PoisonError::into_inner);
        let mut ids = Vec::with_capacity(listing.len());
        for (id, size) in listing {
            docs.entry(id.clone()).or_insert_with(|| Arc::new(DocEntry::evicted(size)));
            ids.push(id);
        }
        Ok(ids)
    }

    /// Whether a data directory is attached.
    pub fn store_attached(&self) -> bool {
        self.store.get().is_some()
    }

    /// Register **and persist** a document under `id`: the durable
    /// counterpart of [`Catalog::insert`]. With no store attached this is
    /// plain registration; with one, the snapshot is written first (a
    /// failed write registers nothing), then the memory budget is
    /// enforced.
    pub fn put(&self, id: impl Into<String>, g: Goddag) -> Result<(), EngineError> {
        let id = id.into();
        let index = Arc::new(StructIndex::build(&g));
        let mut snapshot_bytes = 0;
        if let Some(b) = self.store.get() {
            snapshot_bytes =
                b.store.save(&id, &g, &index).map_err(|e| EngineError::store(e.to_string()))?;
        }
        let entry = Arc::new(DocEntry::resident(g, index, snapshot_bytes));
        self.touch(&entry);
        self.docs.write().unwrap_or_else(PoisonError::into_inner).insert(id, entry);
        self.enforce_budget();
        Ok(())
    }

    /// Store counters (all zero when no store is attached).
    pub fn store_stats(&self) -> StoreStats {
        let mut stats = StoreStats::default();
        for e in self.registry().values() {
            let resident = match e.body.try_read() {
                Ok(guard) => guard.is_some(),
                // Locked for writing: a load or mutation is touching the
                // body, either way it is (about to be) resident.
                Err(_) => true,
            };
            if resident {
                stats.resident_docs += 1;
                stats.resident_bytes += e.snapshot_bytes.load(Ordering::Relaxed);
            }
        }
        if let Some(b) = self.store.get() {
            stats.attached = true;
            stats.budget = b.budget;
            stats.loads = b.loads.load(Ordering::Relaxed);
            stats.evictions = b.evictions.load(Ordering::Relaxed);
            stats.cold_start_hits = b.cold_start_hits.load(Ordering::Relaxed);
            stats.bytes_on_disk = b.store.bytes_on_disk();
        }
        stats
    }

    /// Per-document residency and snapshot size, sorted by id.
    pub fn document_status(&self) -> Vec<(String, Residency, u64)> {
        self.registry()
            .iter()
            .map(|(id, e)| {
                let residency = if e.loading.load(Ordering::Acquire) {
                    Residency::Loading
                } else {
                    match e.body.try_read() {
                        Ok(guard) if guard.is_some() => Residency::Resident,
                        Ok(_) => Residency::Evicted,
                        // Write-locked without the loading flag: an
                        // in-place mutation of a resident body.
                        Err(_) => Residency::Resident,
                    }
                };
                (id.clone(), residency, e.snapshot_bytes.load(Ordering::Relaxed))
            })
            .collect()
    }

    /// Stamp an entry as just-used (the LRU clock).
    fn touch(&self, entry: &DocEntry) {
        let now = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        entry.last_used.store(now, Ordering::Relaxed);
    }

    /// A read guard whose body is guaranteed `Some`: loads the snapshot
    /// (single-flight, under the entry's write lock) when the document is
    /// evicted, retrying if a concurrent budget pass re-evicts between the
    /// load and our re-read.
    fn resident_body<'a>(
        &self,
        id: &str,
        entry: &'a DocEntry,
    ) -> Result<std::sync::RwLockReadGuard<'a, Option<DocBody>>, EngineError> {
        loop {
            {
                let guard = entry.body.read().unwrap_or_else(PoisonError::into_inner);
                if guard.is_some() {
                    self.touch(entry);
                    return Ok(guard);
                }
            }
            self.load_into(id, entry)?;
        }
    }

    /// Load `id`'s snapshot into an evicted entry (no-op if another
    /// thread already did), then enforce the budget — the freshly loaded
    /// entry is the most recently used, so it is never its own victim.
    fn load_into(&self, id: &str, entry: &DocEntry) -> Result<(), EngineError> {
        {
            let mut guard = entry.body.write().unwrap_or_else(PoisonError::into_inner);
            if guard.is_some() {
                return Ok(());
            }
            let Some(b) = self.store.get() else {
                return Err(EngineError::store(format!(
                    "document `{id}` is evicted but no data directory is attached"
                )));
            };
            entry.loading.store(true, Ordering::Release);
            let loaded = b.store.load(id);
            entry.loading.store(false, Ordering::Release);
            let (g, idx) = match loaded {
                Ok(Some(pair)) => pair,
                Ok(None) => return Err(EngineError::unknown_document(id)),
                Err(e) => return Err(EngineError::store(e.to_string())),
            };
            b.loads.fetch_add(1, Ordering::Relaxed);
            if entry.cold.swap(false, Ordering::Relaxed) {
                b.cold_start_hits.fetch_add(1, Ordering::Relaxed);
            }
            *guard = Some(DocBody::new(g, Arc::new(idx)));
            self.touch(entry);
        }
        self.enforce_budget();
        Ok(())
    }

    /// Evict least-recently-used persisted documents until the resident
    /// persisted set fits the budget. In-use documents (read-locked by a
    /// running query) are skipped, and the most recently used document is
    /// never evicted — reloading one oversized document must not thrash.
    fn enforce_budget(&self) {
        let Some(b) = self.store.get() else { return };
        let Some(budget) = b.budget else { return };
        let docs = self.registry();
        let mut resident: Vec<(&Arc<DocEntry>, u64, u64)> = docs
            .values()
            .filter_map(|e| {
                let size = e.snapshot_bytes.load(Ordering::Relaxed);
                if size == 0 {
                    return None; // not persisted — not evictable
                }
                match e.body.try_read() {
                    Ok(guard) if guard.is_some() => {
                        Some((e, size, e.last_used.load(Ordering::Relaxed)))
                    }
                    _ => None,
                }
            })
            .collect();
        let mut total: u64 = resident.iter().map(|&(_, size, _)| size).sum();
        if total <= budget || resident.len() <= 1 {
            return;
        }
        resident.sort_by_key(|&(_, _, used)| used);
        // All but the most recently used are candidates, oldest first.
        for &(e, size, _) in resident.iter().take(resident.len() - 1) {
            if total <= budget {
                break;
            }
            // try_write fails exactly when a query holds the body — skip
            // in-use documents rather than stall the loader.
            if let Ok(mut guard) = e.body.try_write() {
                if guard.take().is_some() {
                    b.evictions.fetch_add(1, Ordering::Relaxed);
                    total -= size;
                }
            }
        }
    }

    /// Read a document's goddag under its lock.
    ///
    /// The closure runs while this document's read lock is held: do
    /// **not** call back into the catalog for the *same* document from
    /// inside it — `add_hierarchy` (a writer) would deadlock against the
    /// held read guard (`std::sync::RwLock` is not reentrant), and even a
    /// same-document query can deadlock once another thread queues a
    /// write. Queries against *other* documents are fine.
    ///
    /// ```
    /// use multihier_xquery::prelude::*;
    ///
    /// let catalog = Catalog::new();
    /// catalog.insert(
    ///     "ms",
    ///     GoddagBuilder::new().hierarchy("w", "<r><w>abc</w></r>").build().unwrap(),
    /// );
    /// let n = catalog.with_document("ms", |g| g.leaf_count()).unwrap();
    /// assert_eq!(n, 1);
    /// ```
    pub fn with_document<T>(
        &self,
        id: &str,
        f: impl FnOnce(&Goddag) -> T,
    ) -> Result<T, EngineError> {
        let entry = self.entry(id)?;
        let guard = self.resident_body(id, &entry)?;
        Ok(f(&guard.as_ref().expect("resident_body returns Some").g))
    }

    /// Add a base hierarchy to a registered document. Takes the document's
    /// write lock (queries on other documents are unaffected); the index
    /// rebuilds lazily on the next query. Compiled plans stay valid.
    /// Persisted documents are re-snapshotted so the mutation survives a
    /// restart.
    pub fn add_hierarchy(&self, id: &str, name: &str, xml: &str) -> Result<(), EngineError> {
        self.check_open()?;
        let entry = self.entry(id)?;
        let doc = mhx_xml::parse(xml)?;
        loop {
            let mut guard = entry.body.write().unwrap_or_else(PoisonError::into_inner);
            let Some(body) = guard.as_mut() else {
                drop(guard);
                self.load_into(id, &entry)?;
                continue;
            };
            body.g.add_document_hierarchy(name, &doc)?;
            if entry.snapshot_bytes.load(Ordering::Relaxed) > 0 {
                if let Some(b) = self.store.get() {
                    // Rebuild the index now — the snapshot stores both —
                    // and leave it in the slot for the next query.
                    let idx = Arc::new(StructIndex::build(&body.g));
                    let bytes = b
                        .store
                        .save(id, &body.g, &idx)
                        .map_err(|e| EngineError::store(e.to_string()))?;
                    *body.index.write().unwrap_or_else(PoisonError::into_inner) = Some(idx);
                    entry.snapshot_bytes.store(bytes, Ordering::Relaxed);
                }
            }
            return Ok(());
        }
    }

    // ------------------------------------------------------------------
    // Query entry points
    // ------------------------------------------------------------------

    /// Evaluate an XPath expression from the root of document `id`.
    pub fn xpath(&self, id: &str, src: &str) -> Result<QueryOutcome, EngineError> {
        // Refuse before compiling: a draining catalog must not pay for
        // (or cache) new plans. Then resolve the document, so an unknown
        // id also fails without compiling anything.
        self.check_open()?;
        let entry = self.entry(id)?;
        let plan = self.plan_for(QueryLang::XPath, src, Some(id))?;
        self.eval_entry(id, &entry, &plan, &self.opts, None)
    }

    /// Run an XQuery query against document `id` with the catalog's
    /// default options.
    pub fn xquery(&self, id: &str, src: &str) -> Result<QueryOutcome, EngineError> {
        self.check_open()?;
        let entry = self.entry(id)?;
        let plan = self.plan_for(QueryLang::XQuery, src, Some(id))?;
        self.eval_entry(id, &entry, &plan, &self.opts, None)
    }

    /// Language-dispatched entry point (what a network front end calls).
    pub fn query(&self, id: &str, lang: QueryLang, src: &str) -> Result<QueryOutcome, EngineError> {
        match lang {
            QueryLang::XPath => self.xpath(id, src),
            QueryLang::XQuery => self.xquery(id, src),
        }
    }

    /// Render the optimized plan for `src` against document `id`: chosen
    /// rewrites, per-step strategies and annotations, and estimated
    /// cardinalities from the document's index statistics (XPath plans
    /// also report actual per-step cardinalities — the plan is evaluated
    /// incrementally to measure them). Compiles through the shared cache,
    /// so explaining a query warms the same plan later queries reuse.
    pub fn explain(&self, id: &str, lang: QueryLang, src: &str) -> Result<String, EngineError> {
        self.check_open()?;
        let entry = self.entry(id)?;
        let plan = self.plan_for(lang, src, Some(id))?;
        let guard = self.resident_body(id, &entry)?;
        let body = guard.as_ref().expect("resident_body returns Some");
        let idx = body.current_index();
        match &plan {
            CachedPlan::XPath(p) => p.explain(&body.g, &idx).map_err(xpath_eval_error),
            CachedPlan::XQuery(q) => Ok(q.explain(Some(idx.stats()))),
        }
    }

    /// Compile a query once (through the shared cache) into a reusable
    /// handle, without touching any document.
    ///
    /// ```
    /// use multihier_xquery::prelude::*;
    ///
    /// let catalog = Catalog::new();
    /// catalog.insert(
    ///     "ms",
    ///     GoddagBuilder::new().hierarchy("w", "<r><w>a</w><w>b</w></r>").build().unwrap(),
    /// );
    /// let q = catalog.prepare(QueryLang::XQuery, "count(/descendant::w)").unwrap();
    /// assert_eq!(catalog.execute("ms", &q).unwrap().serialize(), "2");
    /// ```
    pub fn prepare(&self, lang: QueryLang, src: &str) -> Result<Prepared, EngineError> {
        self.check_open()?;
        let plan = self.plan_for(lang, src, None)?;
        Ok(Prepared::new(lang, src.to_string(), plan))
    }

    /// Execute a prepared query against document `id` with the catalog's
    /// default options.
    pub fn execute(&self, id: &str, prepared: &Prepared) -> Result<QueryOutcome, EngineError> {
        self.eval_plan(id, prepared.plan(), &self.opts, None)
    }

    /// Execute a prepared query with explicit options (sessions route
    /// through this, threading their own counters).
    pub(crate) fn execute_with(
        &self,
        id: &str,
        plan: &CachedPlan,
        opts: &EvalOptions,
        session_totals: Option<&EvalTotals>,
    ) -> Result<QueryOutcome, EngineError> {
        self.eval_plan(id, plan, opts, session_totals)
    }

    /// Open a per-connection handle pinned to document `id`, carrying its
    /// own [`EvalOptions`] (initialized from the catalog defaults).
    pub fn session(&self, id: &str) -> Result<Session<'_>, EngineError> {
        self.check_open()?;
        // `entry` rather than `contains`: a store-backed document that is
        // on disk but not yet registered still opens a session.
        self.entry(id)?;
        Ok(Session::new(self, id.to_string(), self.opts.clone()))
    }

    // ------------------------------------------------------------------
    // Plan pipeline
    // ------------------------------------------------------------------

    /// Parse + compile `src` through the shared cache. `doc` attributes
    /// the lookup for the cross-document hit counter.
    pub(crate) fn plan_for(
        &self,
        lang: QueryLang,
        src: &str,
        doc: Option<&str>,
    ) -> Result<CachedPlan, EngineError> {
        if let Some(plan) = self.cache.get(lang, src, doc) {
            return Ok(plan);
        }
        let plan = match lang {
            QueryLang::XPath => {
                let p = CompiledXPath::compile(src).map_err(xpath_parse_error)?;
                CachedPlan::XPath(Arc::new(p))
            }
            QueryLang::XQuery => {
                let ast = parse_query(src).map_err(xquery_error)?;
                check_static(&ast)?;
                // Optimize once at compile time: the cached plan carries
                // both forms and repeat executions skip the rewrite.
                CachedPlan::XQuery(Arc::new(CompiledXQuery::from_ast(src.to_string(), ast)))
            }
        };
        self.cache.insert(lang, src, doc, plan.clone());
        Ok(plan)
    }

    fn eval_plan(
        &self,
        id: &str,
        plan: &CachedPlan,
        opts: &EvalOptions,
        session_totals: Option<&EvalTotals>,
    ) -> Result<QueryOutcome, EngineError> {
        let entry = self.entry(id)?;
        self.eval_entry(id, &entry, plan, opts, session_totals)
    }

    fn eval_entry(
        &self,
        id: &str,
        entry: &DocEntry,
        plan: &CachedPlan,
        opts: &EvalOptions,
        session_totals: Option<&EvalTotals>,
    ) -> Result<QueryOutcome, EngineError> {
        // Register in flight *before* checking the flag: a concurrent
        // `begin_shutdown → drain` either sees the flag refuse us, or sees
        // our increment and waits for the full evaluation — never a query
        // it doesn't know about.
        let _in_flight = InFlight::enter(&self.in_flight);
        self.check_open()?;
        let guard = self.resident_body(id, entry)?;
        let body = guard.as_ref().expect("resident_body returns Some");
        let g = &body.g;
        let idx = body.current_index();
        let record = |delta: EvalStats| {
            self.eval_totals.add(delta);
            if let Some(totals) = session_totals {
                totals.add(delta);
            }
        };
        match plan {
            CachedPlan::XPath(p) => {
                let ctx = Context::new(NodeId::Root);
                let counters = EvalCounters::default();
                let v = p
                    .evaluate_with(g, &idx, &ctx, opts.optimize, &counters)
                    .map_err(xpath_eval_error)?;
                let rewrites = if opts.optimize { p.report().total() as u64 } else { 0 };
                record(EvalStats {
                    batched_steps: counters.batched_steps.get(),
                    rewritten_steps: counters.rewritten_steps.get(),
                    plan_rewrites: rewrites,
                    early_exit_steps: counters.early_exit_steps.get(),
                    hoisted_preds: counters.hoisted_preds.get(),
                    chain_joins: counters.chain_joins.get(),
                });
                Ok(QueryOutcome::from_xpath_value(v, g, &idx, opts))
            }
            CachedPlan::XQuery(q) => {
                let (out, stats) = q.run_with_index(g, Some(&idx), opts).map_err(xquery_error)?;
                record(EvalStats {
                    batched_steps: stats.batched_steps,
                    rewritten_steps: stats.rewritten_steps,
                    plan_rewrites: stats.plan_rewrites,
                    early_exit_steps: stats.early_exit_steps,
                    hoisted_preds: stats.hoisted_preds,
                    chain_joins: stats.chain_joins,
                });
                Ok(QueryOutcome::from_markup(out))
            }
        }
    }
}

// ----------------------------------------------------------------------
// Static (compile-stage) checks
// ----------------------------------------------------------------------

/// XQuery's static rules make a reference to an undeclared variable a
/// compile-time error. The engine enforces it here — queries always start
/// from an empty variable environment — so `$typo` surfaces as
/// [`EngineError::Compile`] before any document is touched, and invalid
/// plans never enter the shared cache.
fn check_static(ast: &QExpr) -> Result<(), EngineError> {
    let mut scope: Vec<&str> = Vec::new();
    if let Some(var) = free_variable(ast, &mut scope) {
        return Err(EngineError::Compile {
            lang: QueryLang::XQuery,
            message: format!("unbound variable ${var}"),
        });
    }
    Ok(())
}

/// First variable referenced outside any enclosing `for`/`let`/quantified
/// binding, in document order of the AST.
fn free_variable<'a>(e: &'a QExpr, scope: &mut Vec<&'a str>) -> Option<String> {
    use mhx_xquery::ast::{AttrPiece, Content, DirElem, QPathStart};

    fn check_dir<'a>(d: &'a DirElem, scope: &mut Vec<&'a str>) -> Option<String> {
        for (_, pieces) in &d.attrs {
            for p in pieces {
                if let AttrPiece::Expr(e) = p {
                    if let Some(v) = free_variable(e, scope) {
                        return Some(v);
                    }
                }
            }
        }
        for c in &d.content {
            let found = match c {
                Content::Text(_) => None,
                Content::Expr(e) => free_variable(e, scope),
                Content::Elem(inner) => check_dir(inner, scope),
            };
            if found.is_some() {
                return found;
            }
        }
        None
    }

    match e {
        QExpr::Var(v) => (!scope.contains(&v.as_str())).then(|| v.clone()),
        QExpr::Flwor { clauses, ret } => {
            let depth = scope.len();
            for c in clauses {
                let found = match c {
                    Clause::For { var, at, seq } => {
                        let found = free_variable(seq, scope);
                        scope.push(var);
                        if let Some(at) = at {
                            scope.push(at);
                        }
                        found
                    }
                    Clause::Let { var, expr } => {
                        let found = free_variable(expr, scope);
                        scope.push(var);
                        found
                    }
                    Clause::Where(e) => free_variable(e, scope),
                    Clause::OrderBy { keys } => {
                        keys.iter().find_map(|k| free_variable(&k.key, scope))
                    }
                };
                if found.is_some() {
                    scope.truncate(depth);
                    return found;
                }
            }
            let found = free_variable(ret, scope);
            scope.truncate(depth);
            found
        }
        QExpr::Quantified { binds, satisfies, .. } => {
            let depth = scope.len();
            for (var, seq) in binds {
                if let Some(v) = free_variable(seq, scope) {
                    scope.truncate(depth);
                    return Some(v);
                }
                scope.push(var);
            }
            let found = free_variable(satisfies, scope);
            scope.truncate(depth);
            found
        }
        QExpr::Sequence(es) => es.iter().find_map(|e| free_variable(e, scope)),
        QExpr::If { cond, then, els } => free_variable(cond, scope)
            .or_else(|| free_variable(then, scope))
            .or_else(|| free_variable(els, scope)),
        QExpr::Or(a, b) | QExpr::And(a, b) | QExpr::Union(a, b) => {
            free_variable(a, scope).or_else(|| free_variable(b, scope))
        }
        QExpr::Compare { lhs, rhs, .. } | QExpr::Arith { lhs, rhs, .. } => {
            free_variable(lhs, scope).or_else(|| free_variable(rhs, scope))
        }
        QExpr::Range { lo, hi } => free_variable(lo, scope).or_else(|| free_variable(hi, scope)),
        QExpr::Neg(e) => free_variable(e, scope),
        QExpr::Call { args, .. } => args.iter().find_map(|e| free_variable(e, scope)),
        QExpr::Path { start, steps } => {
            if let QPathStart::Expr(e) = start {
                if let Some(v) = free_variable(e, scope) {
                    return Some(v);
                }
            }
            steps.iter().find_map(|s| s.predicates.iter().find_map(|p| free_variable(p, scope)))
        }
        QExpr::Filter { base, predicates } => free_variable(base, scope)
            .or_else(|| predicates.iter().find_map(|p| free_variable(p, scope))),
        QExpr::DirElem(d) => check_dir(d, scope),
        QExpr::Literal(_) | QExpr::Number(_) | QExpr::ContextItem => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhx_goddag::GoddagBuilder;

    fn two_hierarchies() -> Goddag {
        GoddagBuilder::new()
            .hierarchy(
                "lines",
                "<r><line>gesceaftum unawendendne sin</line><line>gallice sibbe gecynde þa</line></r>",
            )
            .hierarchy(
                "words",
                "<r><w>gesceaftum</w> <w>unawendendne</w> <w>singallice</w> <w>sibbe</w> \
                 <w>gecynde</w> <w>þa</w></r>",
            )
            .build()
            .unwrap()
    }

    #[test]
    fn index_rebuilds_lazily_after_hierarchy_mutation() {
        let c = Catalog::new();
        c.insert("ms", two_hierarchies());
        assert!(c.xpath("ms", "/descendant::res").unwrap().nodes().unwrap().is_empty());
        c.add_hierarchy(
            "ms",
            "restorations",
            "<r><res>gesceaftum una</res>wendendne s<res>in</res><res>gallice sibbe gecyn</res>de þa</r>",
        )
        .unwrap();
        // The entry's index snapshot is stale now; the next query rebuilds
        // it and sees the new hierarchy through the same compiled plan.
        let found = c.xpath("ms", "/descendant::res").unwrap();
        assert_eq!(found.nodes().unwrap().len(), 3);
        let stats = c.cache_stats();
        assert_eq!(stats.hits, 1, "compiled plan survived the hierarchy mutation");
        // And the rebuilt snapshot is current: one more query, no rebuild
        // artifacts, same answer.
        assert_eq!(c.xpath("ms", "/descendant::res").unwrap().nodes().unwrap().len(), 3);
    }

    #[test]
    fn static_checker_accepts_all_binding_forms() {
        for q in [
            "for $w at $i in /descendant::w return concat($i, string($w))",
            "let $a := 2 let $b := $a * 3 return $a + $b",
            "some $w in /descendant::w satisfies string($w) = 'sibbe'",
            "every $x in (1, 2) satisfies $x > 0",
            "for $w in /descendant::w where string($w) order by string($w) return $w",
            "for $w in /descendant::w return <b k=\"{$w}\">{$w}</b>",
            "let $res := analyze-string(/, 'ge') for $n in $res/child::m return string($n)",
            "for $w in /descendant::w return $w[1]",
        ] {
            let ast = parse_query(q).unwrap();
            assert_eq!(check_static(&ast), Ok(()), "false positive on `{q}`");
        }
    }

    #[test]
    fn static_checker_rejects_free_variables() {
        for (q, var) in [
            ("$undefined", "undefined"),
            ("for $w in /descendant::w return $typo", "typo"),
            ("let $a := $a return 1", "a"),
            ("(for $x in (1) return $x, $x)", "x"),
            ("some $x in (1) satisfies $y", "y"),
            ("/descendant::w[$p]", "p"),
        ] {
            let ast = parse_query(q).unwrap();
            match check_static(&ast) {
                Err(EngineError::Compile { message, .. }) => {
                    assert!(message.contains(var), "`{q}` should name ${var}: {message}")
                }
                other => panic!("`{q}` should fail the static check, got {other:?}"),
            }
        }
    }

    #[test]
    fn shutdown_refuses_new_work_and_drains() {
        let c = Catalog::new();
        c.insert("ms", two_hierarchies());
        assert!(!c.is_shutting_down());
        assert_eq!(c.in_flight(), 0);
        assert!(c.xpath("ms", "/descendant::w").is_ok());

        c.begin_shutdown();
        assert!(c.is_shutting_down());
        for result in [
            c.xpath("ms", "/descendant::w"),
            c.xquery("ms", "count(/descendant::w)"),
            c.prepare(QueryLang::XPath, "/descendant::w").map(|_| unreachable!()),
            c.add_hierarchy("ms", "x", "<r>nope</r>").map(|_| unreachable!()),
        ] {
            assert!(matches!(result, Err(EngineError::ShuttingDown)), "{result:?}");
        }
        assert!(matches!(c.session("ms"), Err(EngineError::ShuttingDown)));
        // Nothing was in flight, so the drain completes immediately.
        assert!(c.drain(std::time::Duration::from_secs(1)));
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn shutdown_mid_traffic_never_truncates_a_result() {
        // N threads hammer the catalog while the main thread flips the
        // shutdown flag: every query must either complete with the full
        // (known) answer or be refused whole — no partial results, and
        // drain() must reach zero in flight.
        let c = std::sync::Arc::new(Catalog::new());
        c.insert("ms", two_hierarchies());
        let expected = c.xquery("ms", "for $w in /descendant::w return string($w)").unwrap();
        let expected = expected.serialize().to_string();

        let barrier = std::sync::Arc::new(std::sync::Barrier::new(5));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = std::sync::Arc::clone(&c);
                let barrier = std::sync::Arc::clone(&barrier);
                let expected = expected.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    let mut completed = 0u32;
                    let mut refused = 0u32;
                    loop {
                        match c.xquery("ms", "for $w in /descendant::w return string($w)") {
                            Ok(out) => {
                                assert_eq!(out.serialize(), expected, "truncated result");
                                completed += 1;
                            }
                            Err(EngineError::ShuttingDown) => {
                                refused += 1;
                                break;
                            }
                            Err(other) => panic!("unexpected error {other:?}"),
                        }
                    }
                    (completed, refused)
                })
            })
            .collect();
        barrier.wait();
        std::thread::sleep(std::time::Duration::from_millis(20));
        c.begin_shutdown();
        assert!(c.drain(std::time::Duration::from_secs(5)), "drain timed out");
        assert_eq!(c.in_flight(), 0);
        let mut total_completed = 0;
        for h in handles {
            let (completed, refused) = h.join().unwrap();
            assert_eq!(refused, 1, "every worker ends on a clean refusal");
            total_completed += completed;
        }
        assert!(total_completed > 0, "some queries completed before the drain");
    }

    #[test]
    fn removed_documents_stop_serving() {
        let c = Catalog::new();
        c.insert("ms", two_hierarchies());
        assert!(c.xpath("ms", "/descendant::w").is_ok());
        assert!(c.remove("ms"));
        assert!(!c.remove("ms"));
        assert!(matches!(
            c.xpath("ms", "/descendant::w"),
            Err(EngineError::UnknownDocument { .. })
        ));
        assert!(c.is_empty());
    }
}
