//! Typed engine errors.
//!
//! [`EngineError`] preserves the pipeline stage that rejected a request —
//! parse vs. compile vs. evaluation vs. catalog lookup vs. document
//! assembly — instead of flattening everything to a string, so serving
//! front ends can map failures onto protocol status codes.

use std::fmt;

/// Which query language a request was phrased in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryLang {
    XPath,
    XQuery,
}

impl QueryLang {
    /// Stable lowercase name (used in cache keys, CLI flags, messages).
    pub fn name(self) -> &'static str {
        match self {
            QueryLang::XPath => "xpath",
            QueryLang::XQuery => "xquery",
        }
    }
}

impl fmt::Display for QueryLang {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error from the catalog/engine facade.
///
/// Non-exhaustive: new stages (e.g. network-protocol errors) can be added
/// without breaking downstream matches.
///
/// ```
/// use multihier_xquery::prelude::*;
///
/// let catalog = Catalog::new();
/// match catalog.xquery("nowhere", "1 + 1") {
///     Err(EngineError::UnknownDocument { id }) => assert_eq!(id, "nowhere"),
///     other => panic!("expected UnknownDocument, got {other:?}"),
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EngineError {
    /// The query text failed to lex/parse.
    Parse {
        lang: QueryLang,
        message: String,
        /// Byte offset into the query source, when known.
        at: Option<usize>,
    },
    /// The query parsed but could not be compiled into an executable plan
    /// (static errors, e.g. an unbound variable reference).
    Compile { lang: QueryLang, message: String },
    /// The compiled plan failed during evaluation against a document.
    Eval { lang: QueryLang, message: String },
    /// No document is registered under this id.
    UnknownDocument { id: String },
    /// A document could not be assembled (XML syntax, CMH text mismatch,
    /// duplicate hierarchy name, …).
    Document { message: String },
    /// The catalog is draining for shutdown: in-flight queries finish, new
    /// ones are refused (serving front ends map this to 503).
    ShuttingDown,
    /// The persistent document store failed (I/O error or a corrupt
    /// snapshot). Serving front ends map this to 500.
    Store { message: String },
}

impl EngineError {
    /// The offending query language, when the error concerns a query.
    pub fn lang(&self) -> Option<QueryLang> {
        match self {
            EngineError::Parse { lang, .. }
            | EngineError::Compile { lang, .. }
            | EngineError::Eval { lang, .. } => Some(*lang),
            _ => None,
        }
    }

    /// True for errors of the query text itself (parse or compile): the
    /// request can never succeed, against any document.
    pub fn is_static(&self) -> bool {
        matches!(self, EngineError::Parse { .. } | EngineError::Compile { .. })
    }

    pub(crate) fn document(message: impl Into<String>) -> EngineError {
        EngineError::Document { message: message.into() }
    }

    pub(crate) fn unknown_document(id: &str) -> EngineError {
        EngineError::UnknownDocument { id: id.to_string() }
    }

    pub(crate) fn store(message: impl Into<String>) -> EngineError {
        EngineError::Store { message: message.into() }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse { lang, message, at: Some(at) } => {
                write!(f, "{lang} parse error at byte {at}: {message}")
            }
            EngineError::Parse { lang, message, at: None } => {
                write!(f, "{lang} parse error: {message}")
            }
            EngineError::Compile { lang, message } => {
                write!(f, "{lang} compile error: {message}")
            }
            EngineError::Eval { lang, message } => {
                write!(f, "{lang} evaluation error: {message}")
            }
            EngineError::UnknownDocument { id } => {
                write!(f, "unknown document `{id}` (not registered in the catalog)")
            }
            EngineError::Document { message } => {
                write!(f, "document error: {message}")
            }
            EngineError::ShuttingDown => {
                write!(f, "catalog is shutting down (draining in-flight queries)")
            }
            EngineError::Store { message } => {
                write!(f, "document store error: {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<mhx_goddag::GoddagError> for EngineError {
    fn from(e: mhx_goddag::GoddagError) -> EngineError {
        EngineError::document(e.to_string())
    }
}

impl From<mhx_xml::XmlError> for EngineError {
    fn from(e: mhx_xml::XmlError) -> EngineError {
        EngineError::document(e.to_string())
    }
}

/// Map an XPath error to the right stage variant. The compiled-plan layer
/// only fails at parse/compile time; evaluation failures are tagged by the
/// caller via [`EngineError::Eval`].
pub(crate) fn xpath_parse_error(e: mhx_xpath::XPathError) -> EngineError {
    EngineError::Parse { lang: QueryLang::XPath, message: e.msg, at: e.at }
}

pub(crate) fn xpath_eval_error(e: mhx_xpath::XPathError) -> EngineError {
    EngineError::Eval { lang: QueryLang::XPath, message: e.msg }
}

/// Map an XQuery error through its crate-level stage tag.
pub(crate) fn xquery_error(e: mhx_xquery::XQueryError) -> EngineError {
    match e.kind {
        mhx_xquery::XQueryErrorKind::Parse => {
            EngineError::Parse { lang: QueryLang::XQuery, message: e.msg, at: e.at }
        }
        mhx_xquery::XQueryErrorKind::Eval => {
            EngineError::Eval { lang: QueryLang::XQuery, message: e.msg }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_stage() {
        let e = EngineError::Parse {
            lang: QueryLang::XQuery,
            message: "expected `return`".into(),
            at: Some(7),
        };
        assert_eq!(e.to_string(), "xquery parse error at byte 7: expected `return`");
        assert!(e.is_static());
        assert_eq!(e.lang(), Some(QueryLang::XQuery));

        let e = EngineError::unknown_document("ms-b");
        assert!(e.to_string().contains("ms-b"));
        assert!(!e.is_static());
        assert_eq!(e.lang(), None);
    }

    #[test]
    fn source_kinds_survive_the_mapping() {
        let parse = mhx_xquery::XQueryError::at("bad", 3);
        match xquery_error(parse) {
            EngineError::Parse { lang: QueryLang::XQuery, at: Some(3), .. } => {}
            other => panic!("expected Parse, got {other:?}"),
        }
        let eval = mhx_xquery::XQueryError::new("idiv by zero");
        match xquery_error(eval) {
            EngineError::Eval { lang: QueryLang::XQuery, .. } => {}
            other => panic!("expected Eval, got {other:?}"),
        }
    }
}
