//! The serving facade: a multi-document [`Catalog`] with one shared plan
//! cache, per-connection [`Session`]s, typed [`EngineError`]s, and the
//! unified [`QueryOutcome`] result type.
//!
//! The paper's engine queries *corpora* of concurrently-annotated
//! documents — electronic editions span many manuscripts — so the facade
//! is catalog-shaped:
//!
//! * [`Catalog`] maps document ids to independent documents (KyGODDAG +
//!   structural index). Queries take `&self`; per-document state sits
//!   behind `RwLock`s and the catalog is `Send + Sync`, so one catalog
//!   serves many threads.
//! * One LRU plan cache is **shared across all documents**: plans name
//!   axes, tests and strategies — never node ids — so
//!   `count(/descendant::w)` compiles once and serves every manuscript
//!   (see [`CacheStats::cross_doc_hits`]).
//! * [`Session`] pins a document id and carries per-connection
//!   [`EvalOptions`]; [`Prepared`] handles from
//!   [`Catalog::prepare`] skip even the cache lookup.
//! * Both languages return [`QueryOutcome`]; failures are typed
//!   [`EngineError`]s that keep the source stage (parse / compile / eval /
//!   unknown document) instead of flattening to a string.
//! * Evaluation under the facade is **batched**: cached plans feed whole
//!   intermediate node sets through `resolve_step_batch` (one index pass
//!   per predicate-free step), so wide results — the common shape for
//!   corpus-level extended-axis queries — cost one sort-dedup per step,
//!   not one per context node (see `BENCH_batch.json`).
//!
//! [`Engine`] remains as the one-document convenience wrapper.

pub mod cache;
pub mod catalog;
pub mod error;
pub mod result;
pub mod session;

pub use cache::CacheStats;
pub use catalog::{Catalog, EvalStats, Residency, StoreStats, DEFAULT_PLAN_CACHE_CAPACITY};
pub use error::{EngineError, QueryLang};
pub use result::{QueryOutcome, QueryValue};
pub use session::{Prepared, Session};

use mhx_goddag::Goddag;
use mhx_xquery::EvalOptions;

/// Document id used by the one-document [`Engine`] wrapper.
const ENGINE_DOC: &str = "main";

/// One-document convenience wrapper over a [`Catalog`].
///
/// Everything an `Engine` does, a catalog with a single registered
/// document does; the wrapper just pins the document id. Queries take
/// `&self` — an `Engine` is `Send + Sync` and can serve threads directly.
///
/// ```
/// use multihier_xquery::prelude::*;
///
/// let goddag = GoddagBuilder::new()
///     .hierarchy("lines", "<r><line>gesceaftum unawendendne sin</line>\
///                          <line>gallice sibbe gecynde þa</line></r>")
///     .hierarchy("words", "<r><w>gesceaftum</w> <w>unawendendne</w> \
///                          <w>singallice</w> <w>sibbe</w> <w>gecynde</w> <w>þa</w></r>")
///     .build()
///     .unwrap();
/// let engine = Engine::new(goddag);
///
/// let q = "for $l in /descendant::line[overlapping::w] return string($l)";
/// let out = engine.xquery(q).unwrap();
/// assert_eq!(out.serialize(), "gesceaftum unawendendne singallice sibbe gecynde þa");
///
/// // Same result type from the XPath side; repeats hit the plan cache.
/// assert_eq!(engine.xpath("count(/descendant::w)").unwrap().num(), Some(6.0));
/// engine.xquery(q).unwrap();
/// assert_eq!(engine.cache_stats().hits, 1);
/// ```
pub struct Engine {
    catalog: Catalog,
}

impl Engine {
    /// Wrap a document; builds the structural index eagerly.
    pub fn new(g: Goddag) -> Engine {
        Engine::with_options(g, EvalOptions::default())
    }

    /// [`Engine::new`] with XQuery evaluation options.
    pub fn with_options(g: Goddag, opts: EvalOptions) -> Engine {
        let catalog = Catalog::with_options(opts);
        catalog.insert(ENGINE_DOC, g);
        Engine { catalog }
    }

    /// Override the plan-cache capacity (min 1). Preserves already-cached
    /// plans up to the new capacity and keeps cumulative stats.
    pub fn with_plan_cache_capacity(self, capacity: usize) -> Engine {
        self.catalog.set_plan_cache_capacity(capacity);
        self
    }

    /// The backing catalog (e.g. to register more documents later).
    ///
    /// The engine's own document is registered under the id `"main"`;
    /// removing or replacing that entry through the catalog pulls the
    /// document out from under the wrapper (see the panic notes on
    /// [`Engine::with_goddag`] and [`Engine::session`]).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Read the wrapped document under its lock.
    ///
    /// # Panics
    ///
    /// If the engine's `"main"` document was removed via
    /// [`Engine::catalog`].
    pub fn with_goddag<T>(&self, f: impl FnOnce(&Goddag) -> T) -> T {
        self.catalog.with_document(ENGINE_DOC, f).expect("engine document is registered")
    }

    pub fn cache_stats(&self) -> CacheStats {
        self.catalog.cache_stats()
    }

    /// Cumulative evaluation counters (batched / rewritten steps).
    pub fn eval_stats(&self) -> EvalStats {
        self.catalog.eval_stats()
    }

    /// A session over the wrapped document.
    ///
    /// # Panics
    ///
    /// If the engine's `"main"` document was removed via
    /// [`Engine::catalog`].
    pub fn session(&self) -> Session<'_> {
        self.catalog.session(ENGINE_DOC).expect("engine document is registered")
    }

    /// Add a base hierarchy to the document; the index rebuilds lazily.
    /// Compiled plans stay valid (they are document-independent).
    pub fn add_hierarchy(&self, name: &str, xml: &str) -> Result<(), EngineError> {
        self.catalog.add_hierarchy(ENGINE_DOC, name, xml)
    }

    /// Evaluate an XPath expression from the root, through the cached
    /// compiled plan and the structural index.
    pub fn xpath(&self, src: &str) -> Result<QueryOutcome, EngineError> {
        self.catalog.xpath(ENGINE_DOC, src)
    }

    /// Run an XQuery query through the cached parse and the structural
    /// index.
    pub fn xquery(&self, src: &str) -> Result<QueryOutcome, EngineError> {
        self.catalog.xquery(ENGINE_DOC, src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhx_goddag::GoddagBuilder;

    fn two_hierarchies() -> Goddag {
        GoddagBuilder::new()
            .hierarchy(
                "lines",
                "<r><line>gesceaftum unawendendne sin</line><line>gallice sibbe gecynde þa</line></r>",
            )
            .hierarchy(
                "words",
                "<r><w>gesceaftum</w> <w>unawendendne</w> <w>singallice</w> <w>sibbe</w> \
                 <w>gecynde</w> <w>þa</w></r>",
            )
            .build()
            .unwrap()
    }

    #[test]
    fn repeated_query_hits_plan_cache() {
        let e = Engine::new(two_hierarchies());
        let q = "for $l in /descendant::line[overlapping::w] return string($l)";
        let first = e.xquery(q).unwrap();
        assert_eq!(e.cache_stats().misses, 1);
        assert_eq!(e.cache_stats().hits, 0);
        for _ in 0..5 {
            assert_eq!(e.xquery(q).unwrap(), first);
        }
        let stats = e.cache_stats();
        assert_eq!(stats.misses, 1, "no re-parse after the first evaluation");
        assert_eq!(stats.hits, 5);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn xpath_and_xquery_share_the_cache() {
        let e = Engine::new(two_hierarchies());
        let v = e.xpath("/descendant::w[3]").unwrap();
        assert_eq!(v.nodes().unwrap().len(), 1);
        assert_eq!(v.serialize(), "<w>singallice</w>");
        e.xpath("/descendant::w[3]").unwrap();
        e.xquery("count(/descendant::w)").unwrap();
        let stats = e.cache_stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn same_text_in_both_languages_does_not_collide() {
        let e = Engine::new(two_hierarchies());
        // Valid in both languages; the plans differ.
        let q = "count(/descendant::w)";
        assert_eq!(e.xquery(q).unwrap().serialize(), "6");
        assert_eq!(e.xpath(q).unwrap().num(), Some(6.0));
        assert_eq!(e.xquery(q).unwrap().serialize(), "6");
        assert_eq!(e.xpath(q).unwrap().num(), Some(6.0));
        let stats = e.cache_stats();
        assert_eq!(stats.entries, 2, "one entry per language");
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 2, "second round is all cache hits");
    }

    #[test]
    fn lru_evicts_oldest() {
        let e = Engine::new(two_hierarchies()).with_plan_cache_capacity(2);
        e.xpath("/descendant::w[1]").unwrap();
        e.xpath("/descendant::w[2]").unwrap();
        // Touch the first so the second is now least recent.
        e.xpath("/descendant::w[1]").unwrap();
        e.xpath("/descendant::w[3]").unwrap();
        let stats = e.cache_stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        // The touched plan survived; the untouched one was evicted.
        e.xpath("/descendant::w[1]").unwrap();
        assert_eq!(e.cache_stats().hits, 2);
        e.xpath("/descendant::w[2]").unwrap();
        assert_eq!(e.cache_stats().misses, 4, "evicted plan re-compiles");
    }

    #[test]
    fn resizing_a_warm_cache_keeps_plans_and_stats() {
        // The old facade silently discarded every cached plan (and the
        // counters) on resize; the catalog equivalent must not.
        let e = Engine::new(two_hierarchies());
        e.xpath("/descendant::w[1]").unwrap();
        e.xpath("/descendant::w[2]").unwrap();
        e.xpath("/descendant::w[1]").unwrap();
        assert_eq!(e.cache_stats().hits, 1);

        let e = e.with_plan_cache_capacity(1);
        let stats = e.cache_stats();
        assert_eq!(stats.hits, 1, "cumulative stats survive the resize");
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 1, "kept up to the new capacity");
        assert_eq!(stats.evictions, 1, "the trimmed entry is an eviction");

        // The most recently used plan is the survivor.
        e.xpath("/descendant::w[1]").unwrap();
        assert_eq!(e.cache_stats().hits, 2);
        assert_eq!(e.cache_stats().misses, 2);
    }

    #[test]
    fn analyze_string_queries_leave_engine_consistent() {
        let e = Engine::new(two_hierarchies());
        let q = "for $m in analyze-string(/, 'gallice') return string($m)";
        let out = e.xquery(q).unwrap();
        assert!(out.serialize().contains("gallice"), "match materialized: {out}");
        // Temporary hierarchies died with the evaluator: the engine's own
        // goddag is untouched.
        assert_eq!(e.with_goddag(|g| g.hierarchy_count()), 2);
        assert_eq!(e.xquery(q).unwrap(), out);
    }

    #[test]
    fn add_hierarchy_keeps_plans_and_refreshes_index() {
        let e = Engine::new(two_hierarchies());
        let q = "/descendant::res";
        assert!(e.xpath(q).unwrap().nodes().unwrap().is_empty());
        e.add_hierarchy(
            "restorations",
            "<r><res>gesceaftum una</res>wendendne s<res>in</res><res>gallice sibbe gecyn</res>de þa</r>",
        )
        .unwrap();
        assert_eq!(e.xpath(q).unwrap().nodes().unwrap().len(), 3);
        let stats = e.cache_stats();
        assert_eq!(stats.hits, 1, "compiled plan survived the hierarchy mutation");
    }

    #[test]
    fn bad_queries_surface_typed_errors() {
        let e = Engine::new(two_hierarchies());
        assert!(matches!(
            e.xpath("/descendant::"),
            Err(EngineError::Parse { lang: QueryLang::XPath, .. })
        ));
        assert!(matches!(
            e.xquery("for $x in"),
            Err(EngineError::Parse { lang: QueryLang::XQuery, .. })
        ));
        assert!(matches!(
            e.xquery("$undefined"),
            Err(EngineError::Compile { lang: QueryLang::XQuery, .. })
        ));
        assert!(matches!(
            e.xquery("1 idiv 0"),
            Err(EngineError::Eval { lang: QueryLang::XQuery, .. })
        ));
        assert!(matches!(
            e.add_hierarchy("words", "<r>nope</r>"),
            Err(EngineError::Document { .. })
        ));
    }
}
