//! The unified query result type.
//!
//! Both query languages return a [`QueryOutcome`], so callers never branch
//! on language: XPath produces node sets and atomics, XQuery produces
//! serialized markup, and every outcome carries its paper-style serialized
//! form (computed once, at evaluation time, with the same serializer the
//! XQuery engine uses — element nodes render their own hierarchy's markup,
//! leaves render text).
//!
//! Serializing eagerly is a deliberate trade-off: it makes the outcome
//! self-contained (valid after the document mutates or is removed, safe to
//! ship across threads) at the cost of rendering markup the caller may
//! never read. Node-set queries pay per result-subtree — for bulk node
//! *enumeration* on large documents (`/descendant::*`), prefer the
//! unserialized one-shot layers ([`mhx_xpath::evaluate_xpath`]) over the
//! catalog facade.

use crate::engine::error::QueryLang;
use mhx_goddag::{Goddag, NodeId, StructIndex};
use mhx_xpath::Value;
use mhx_xquery::{serialize, EvalOptions, Evaluator, Item};

/// The value inside a [`QueryOutcome`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryValue {
    /// A node set in KyGODDAG document order (XPath path results).
    Nodes(Vec<NodeId>),
    Str(String),
    Num(f64),
    Bool(bool),
    /// Serialized markup (XQuery sequences, which may contain constructed
    /// elements that outlive no evaluator).
    Markup(String),
}

/// What a query evaluated to, in both typed and serialized form.
///
/// ```
/// use multihier_xquery::prelude::*;
///
/// let catalog = Catalog::new();
/// catalog.insert(
///     "ms",
///     GoddagBuilder::new()
///         .hierarchy("lines", "<r><line>ab</line><line>cd</line></r>")
///         .hierarchy("words", "<r><w>a</w><w>bc</w><w>d</w></r>")
///         .build()
///         .unwrap(),
/// );
///
/// // Same result type from both languages:
/// let n = catalog.xpath("ms", "count(/descendant::w)").unwrap();
/// let q = catalog.xquery("ms", "count(/descendant::w)").unwrap();
/// assert_eq!(n.serialize(), "3");
/// assert_eq!(q.serialize(), "3");
/// assert_eq!(n.num(), Some(3.0));
///
/// // Node sets keep their identity alongside the serialized form
/// // (element nodes render the markup of their own hierarchy).
/// let words = catalog.xpath("ms", "/descendant::w[overlapping::line]").unwrap();
/// assert_eq!(words.nodes().unwrap().len(), 1);
/// assert_eq!(words.serialize(), "<w>bc</w>");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    lang: QueryLang,
    value: QueryValue,
    serialized: String,
}

impl QueryOutcome {
    /// Wrap an XPath [`Value`], serializing it through the XQuery
    /// serializer so both languages print identically.
    pub(crate) fn from_xpath_value(
        v: Value,
        g: &Goddag,
        idx: &StructIndex,
        opts: &EvalOptions,
    ) -> QueryOutcome {
        let items: Vec<Item> = match &v {
            Value::Nodes(ns) => ns.iter().map(|&n| Item::Node(n)).collect(),
            Value::Str(s) => vec![Item::Str(s.clone())],
            Value::Num(n) => vec![Item::Num(*n)],
            Value::Bool(b) => vec![Item::Bool(*b)],
        };
        let ev = Evaluator::with_index(g, idx, opts.clone());
        let serialized = serialize::serialize_sequence(&ev, &items);
        let value = match v {
            Value::Nodes(ns) => QueryValue::Nodes(ns),
            Value::Str(s) => QueryValue::Str(s),
            Value::Num(n) => QueryValue::Num(n),
            Value::Bool(b) => QueryValue::Bool(b),
        };
        QueryOutcome { lang: QueryLang::XPath, value, serialized }
    }

    /// Wrap an already-serialized XQuery result.
    pub(crate) fn from_markup(serialized: String) -> QueryOutcome {
        QueryOutcome {
            lang: QueryLang::XQuery,
            value: QueryValue::Markup(serialized.clone()),
            serialized,
        }
    }

    /// Which language produced this outcome.
    pub fn lang(&self) -> QueryLang {
        self.lang
    }

    /// The paper-style serialized form ("the output … is either a string
    /// or a sequence of strings").
    pub fn serialize(&self) -> &str {
        &self.serialized
    }

    /// Consume into the serialized form without cloning.
    pub fn into_string(self) -> String {
        self.serialized
    }

    /// Borrow the typed value.
    pub fn value(&self) -> &QueryValue {
        &self.value
    }

    /// Consume into the typed value.
    pub fn into_value(self) -> QueryValue {
        self.value
    }

    /// The node set, if this outcome is one.
    pub fn nodes(&self) -> Option<&[NodeId]> {
        match &self.value {
            QueryValue::Nodes(ns) => Some(ns),
            _ => None,
        }
    }

    /// The numeric value, if this outcome is an atomic number.
    pub fn num(&self) -> Option<f64> {
        match &self.value {
            QueryValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this outcome is an atomic boolean.
    pub fn bool(&self) -> Option<bool> {
        match &self.value {
            QueryValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True when the outcome holds nothing: an empty node set or an empty
    /// serialized sequence.
    pub fn is_empty(&self) -> bool {
        match &self.value {
            QueryValue::Nodes(ns) => ns.is_empty(),
            QueryValue::Str(s) | QueryValue::Markup(s) => s.is_empty(),
            QueryValue::Num(_) | QueryValue::Bool(_) => false,
        }
    }
}

impl std::fmt::Display for QueryOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.serialized)
    }
}
