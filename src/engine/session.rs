//! Per-connection handles: [`Session`] pins a document id and carries its
//! own [`EvalOptions`]; [`Prepared`] is a compiled query handle reusable
//! across documents. Together they give a future network front end a
//! per-connection object to own: one session per client, prepared
//! statements shared through the catalog's plan cache.

use crate::engine::cache::CachedPlan;
use crate::engine::catalog::{Catalog, EvalStats, EvalTotals};
use crate::engine::error::{EngineError, QueryLang};
use crate::engine::result::QueryOutcome;
use mhx_xquery::EvalOptions;

/// A compiled query handle from [`Catalog::prepare`]. Holds its plan
/// directly (an `Arc` into the shared cache's entry), so executing a
/// prepared query never re-parses — even if the cache entry is evicted.
#[derive(Debug, Clone)]
pub struct Prepared {
    lang: QueryLang,
    src: String,
    plan: CachedPlan,
}

impl Prepared {
    pub(crate) fn new(lang: QueryLang, src: String, plan: CachedPlan) -> Prepared {
        Prepared { lang, src, plan }
    }

    pub fn lang(&self) -> QueryLang {
        self.lang
    }

    /// The original query text.
    pub fn source(&self) -> &str {
        &self.src
    }

    pub(crate) fn plan(&self) -> &CachedPlan {
        &self.plan
    }
}

/// A per-connection handle pinned to one document of a [`Catalog`].
///
/// Sessions borrow the catalog (`&self` queries — many sessions run
/// concurrently on one catalog) and carry their own [`EvalOptions`], so
/// one client can e.g. switch `analyze-string` to XSLT semantics without
/// affecting anyone else.
///
/// ```
/// use multihier_xquery::prelude::*;
///
/// let catalog = Catalog::new();
/// catalog.insert(
///     "ms",
///     GoddagBuilder::new()
///         .hierarchy("lines", "<r><line>ab</line><line>cd</line></r>")
///         .hierarchy("words", "<r><w>a</w><w>bcd</w></r>")
///         .build()
///         .unwrap(),
/// );
///
/// let session = catalog.session("ms").unwrap();
/// assert_eq!(session.xquery("count(/descendant::w)").unwrap().serialize(), "2");
///
/// // Prepared statements compile once and run through any session.
/// let q = catalog.prepare(QueryLang::XPath, "/descendant::w[overlapping::line]").unwrap();
/// assert_eq!(session.run(&q).unwrap().nodes().unwrap().len(), 1);
/// ```
pub struct Session<'c> {
    catalog: &'c Catalog,
    doc: String,
    opts: EvalOptions,
    totals: EvalTotals,
}

impl<'c> Session<'c> {
    pub(crate) fn new(catalog: &'c Catalog, doc: String, opts: EvalOptions) -> Session<'c> {
        Session { catalog, doc, opts, totals: EvalTotals::default() }
    }

    /// The pinned document id.
    pub fn doc_id(&self) -> &str {
        &self.doc
    }

    /// The catalog this session serves from.
    pub fn catalog(&self) -> &'c Catalog {
        self.catalog
    }

    pub fn options(&self) -> &EvalOptions {
        &self.opts
    }

    /// Mutate this session's evaluation options (other sessions and the
    /// catalog defaults are unaffected).
    pub fn options_mut(&mut self) -> &mut EvalOptions {
        &mut self.opts
    }

    /// Builder-style options override.
    pub fn with_options(mut self, opts: EvalOptions) -> Session<'c> {
        self.opts = opts;
        self
    }

    /// This session's own evaluation counters (the per-connection view of
    /// [`Catalog::eval_stats`]): batched / rewritten steps from queries
    /// run *through this session* only. Serving front ends surface these
    /// per connection.
    pub fn eval_stats(&self) -> EvalStats {
        self.totals.snapshot()
    }

    /// Evaluate an XPath expression against the pinned document.
    pub fn xpath(&self, src: &str) -> Result<QueryOutcome, EngineError> {
        let plan = self.catalog.plan_for(QueryLang::XPath, src, Some(&self.doc))?;
        self.catalog.execute_with(&self.doc, &plan, &self.opts, Some(&self.totals))
    }

    /// Run an XQuery query against the pinned document with this session's
    /// options.
    pub fn xquery(&self, src: &str) -> Result<QueryOutcome, EngineError> {
        let plan = self.catalog.plan_for(QueryLang::XQuery, src, Some(&self.doc))?;
        self.catalog.execute_with(&self.doc, &plan, &self.opts, Some(&self.totals))
    }

    /// Language-dispatched entry point.
    pub fn query(&self, lang: QueryLang, src: &str) -> Result<QueryOutcome, EngineError> {
        match lang {
            QueryLang::XPath => self.xpath(src),
            QueryLang::XQuery => self.xquery(src),
        }
    }

    /// Execute a prepared query against the pinned document with this
    /// session's options.
    pub fn run(&self, prepared: &Prepared) -> Result<QueryOutcome, EngineError> {
        self.catalog.execute_with(&self.doc, prepared.plan(), &self.opts, Some(&self.totals))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhx_goddag::GoddagBuilder;
    use mhx_xquery::AnalyzeMode;

    fn catalog() -> Catalog {
        let c = Catalog::new();
        c.insert(
            "ms",
            GoddagBuilder::new().hierarchy("words", "<r><w>unawendendne</w></r>").build().unwrap(),
        );
        c
    }

    #[test]
    fn session_options_are_per_connection() {
        let c = catalog();
        let paper = c.session("ms").unwrap();
        let mut xslt = c.session("ms").unwrap();
        xslt.options_mut().analyze_mode = AnalyzeMode::Xslt;

        let q = "serialize(analyze-string((/descendant::w)[1], '.*unawe.*'))";
        // Paper-compat mode: shortest-match semantics tag just `unawe`.
        assert_eq!(paper.xquery(q).unwrap().serialize(), "<res><m>unawe</m>ndendne</res>");
        // XSLT mode on the *same catalog*: greedy match tags the whole word.
        assert_eq!(xslt.xquery(q).unwrap().serialize(), "<res><m>unawendendne</m></res>");
        // One compilation served both sessions.
        assert_eq!(c.cache_stats().misses, 1);
        assert_eq!(c.cache_stats().hits, 1);
    }

    #[test]
    fn prepared_survives_eviction() {
        let c = catalog().with_plan_cache_capacity(1);
        let q = c.prepare(QueryLang::XQuery, "count(/descendant::w)").unwrap();
        assert_eq!(q.lang(), QueryLang::XQuery);
        assert_eq!(q.source(), "count(/descendant::w)");
        // Evict the prepared plan's cache entry.
        c.xpath("ms", "/descendant::w").unwrap();
        assert_eq!(c.cache_stats().entries, 1);
        assert_eq!(c.cache_stats().evictions, 1);
        // The handle still executes without recompiling (misses unchanged).
        let misses_before = c.cache_stats().misses;
        assert_eq!(c.execute("ms", &q).unwrap().serialize(), "1");
        assert_eq!(c.cache_stats().misses, misses_before);
    }

    #[test]
    fn sessions_count_their_own_evaluations() {
        let c = Catalog::new();
        c.insert(
            "ms",
            GoddagBuilder::new()
                .hierarchy("lines", "<r><line>ab</line><line>cd</line></r>")
                .hierarchy("words", "<r><w>a</w><w>bcd</w></r>")
                .build()
                .unwrap(),
        );
        let busy = c.session("ms").unwrap();
        let idle = c.session("ms").unwrap();
        // Batched predicate-free steps through one session only.
        busy.xpath("/descendant::w").unwrap();
        busy.xquery("count(/descendant::line)").unwrap();
        let busy_stats = busy.eval_stats();
        assert!(busy_stats.batched_steps > 0, "{busy_stats:?}");
        assert_eq!(idle.eval_stats(), EvalStats::default(), "idle session saw nothing");
        // The catalog totals cover both sessions (here: just the busy one).
        assert!(c.eval_stats().batched_steps >= busy_stats.batched_steps);
    }

    #[test]
    fn session_requires_a_registered_document() {
        let c = catalog();
        assert!(matches!(c.session("nope"), Err(EngineError::UnknownDocument { .. })));
        assert_eq!(c.session("ms").unwrap().doc_id(), "ms");
    }
}
