//! # multihier-xquery
//!
//! A Rust reproduction of **Iacob & Dekhtyar, "Multihierarchical XQuery for
//! Document-Centric XML" (SIGMOD 2006)**: a query engine for XML documents
//! whose text is annotated by several *concurrent markup hierarchies* that
//! may overlap each other — the normal situation in document-centric
//! encodings such as electronic editions of manuscripts.
//!
//! This facade crate re-exports the workspace layers:
//!
//! * [`xml`] — XML parser / DOM / DTD substrate;
//! * [`regex`] — regex engine with capture groups;
//! * [`goddag`] — the KyGODDAG data structure, extended axes, node order;
//! * [`xpath`] — the extended XPath of the paper's Definition 1/2;
//! * [`xquery`] — the extended XQuery with `analyze-string()`;
//! * [`corpus`] — the paper's Figure-1 manuscript corpus and synthetic
//!   workload generators;
//! * [`baseline`] — single-document milestone/fragmentation baselines;
//! * [`server`] — the `mhxd` network front end: a std-only concurrent
//!   HTTP/1.1 server (and matching blocking client) that puts the
//!   [`Catalog`] on the wire, one [`Session`] per connection.
//!
//! ## Quickstart
//!
//! ```
//! use multihier_xquery::prelude::*;
//!
//! // Two concurrent hierarchies over the same text.
//! let goddag = GoddagBuilder::new()
//!     .hierarchy("lines", "<r><line>gesceaftum unawendendne sin</line>\
//!                          <line>gallice sibbe gecynde þa</line></r>")
//!     .hierarchy("words", "<r><w>gesceaftum</w> <w>unawendendne</w> \
//!                          <w>singallice</w> <w>sibbe</w> <w>gecynde</w> <w>þa</w></r>")
//!     .build()
//!     .unwrap();
//!
//! // The word "singallice" overlaps the line break: the overlapping axis
//! // finds both lines.
//! let out = run_query(
//!     &goddag,
//!     "for $l in /descendant::line[xdescendant::w[string(.) = 'singallice'] or \
//!      overlapping::w[string(.) = 'singallice']] return string($l)",
//! )
//! .unwrap();
//! // Both lines match; paper-style serialization concatenates the two
//! // line strings, reassembling the split word.
//! assert_eq!(out, "gesceaftum unawendendne singallice sibbe gecynde þa");
//! ```

pub use mhx_baseline as baseline;
pub use mhx_corpus as corpus;
pub use mhx_goddag as goddag;
pub use mhx_regex as regex;
pub use mhx_xml as xml;
pub use mhx_xpath as xpath;
pub use mhx_xquery as xquery;

pub mod engine;
pub mod server;

pub use engine::{
    CacheStats, Catalog, Engine, EngineError, EvalStats, Prepared, QueryLang, QueryOutcome,
    QueryValue, Residency, Session, StoreStats,
};

/// The most common imports in one place.
pub mod prelude {
    pub use crate::engine::{
        CacheStats, Catalog, Engine, EngineError, EvalStats, Prepared, QueryLang, QueryOutcome,
        QueryValue, Residency, Session, StoreStats,
    };
    pub use mhx_goddag::{Goddag, GoddagBuilder, NodeId, StructIndex};
    pub use mhx_xml::Document;
    pub use mhx_xpath::evaluate_xpath;
    pub use mhx_xquery::{run_query, run_query_with, EvalOptions};
}
