//! The dispatch layer under the evented front ends: a fixed pool of
//! worker threads draining an mpsc queue of ready-to-run jobs. The
//! event loop ([`super::event`]) owns every socket and parses requests
//! incrementally; only *complete* requests are boxed up as jobs and
//! queued here, so a worker is never parked on a slow client — the pool
//! size bounds concurrent request execution, not connection count.

use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;

/// One complete request's execution, state and reply channel captured.
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

pub(crate) struct DispatchPool {
    tx: Option<Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl DispatchPool {
    /// Start `workers` worker threads named `{name}-worker-{i}`.
    pub(crate) fn start(name: &str, workers: usize) -> DispatchPool {
        let (tx, rx): (Sender<Job>, Receiver<Job>) = mpsc::channel();
        let rx = Arc::new(Mutex::new(rx));
        let worker_handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                thread::Builder::new()
                    .name(format!("{name}-worker-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawn worker thread")
            })
            .collect();
        DispatchPool { tx: Some(tx), workers: worker_handles }
    }

    /// A clonable handle for submitting jobs (the event loop keeps one).
    pub(crate) fn sender(&self) -> Sender<Job> {
        self.tx.clone().expect("pool not joined yet")
    }

    /// Close the queue and join every worker. All `sender()` clones must
    /// be dropped first (the event loop drops its clone when its thread
    /// exits) or the workers block on the open queue forever.
    pub(crate) fn join(&mut self) {
        self.tx.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        // Holding the lock while blocked in `recv` is the queue
        // discipline: idle workers line up on the mutex, one wakes per
        // job.
        let next = {
            let rx = rx.lock().unwrap_or_else(PoisonError::into_inner);
            rx.recv()
        };
        match next {
            Ok(job) => job(),
            Err(_) => break, // every sender gone and queue empty
        }
    }
}
