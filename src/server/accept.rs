//! Shared acceptor + worker-pool plumbing for the TCP front ends —
//! `mhxd`'s [`Server`](crate::server::Server) and `mhxr`'s
//! [`Router`](crate::server::Router): a listener thread feeds accepted
//! connections into an mpsc queue drained by a fixed pool of workers.
//! A `draining` predicate is consulted on every accept so a
//! shutting-down front end stops taking new connections while the
//! queued ones are still served to completion.

use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::Duration;

pub(crate) struct AcceptPool {
    acceptor: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl AcceptPool {
    /// Start the acceptor thread plus `workers` worker threads. Each
    /// accepted stream gets the poll-interval read timeout and nodelay
    /// set before it is queued; `handler` owns the stream for its whole
    /// keep-alive lifetime (worker-per-connection concurrency).
    pub(crate) fn start(
        listener: TcpListener,
        name: &str,
        workers: usize,
        poll_interval: Duration,
        draining: Arc<dyn Fn() -> bool + Send + Sync>,
        handler: Arc<dyn Fn(TcpStream) + Send + Sync>,
    ) -> AcceptPool {
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = mpsc::channel();
        let rx = Arc::new(Mutex::new(rx));
        let worker_handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&handler);
                thread::Builder::new()
                    .name(format!("{name}-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &*handler))
                    .expect("spawn worker thread")
            })
            .collect();
        let acceptor = thread::Builder::new()
            .name(format!("{name}-acceptor"))
            .spawn(move || {
                for stream in listener.incoming() {
                    if draining() {
                        break; // the wake-up connection (or any late one) is discarded
                    }
                    match stream {
                        Ok(s) => {
                            // Short read timeout = the drain-poll interval.
                            let _ = s.set_read_timeout(Some(poll_interval));
                            let _ = s.set_nodelay(true);
                            if tx.send(s).is_err() {
                                break;
                            }
                        }
                        Err(_) => thread::sleep(Duration::from_millis(5)),
                    }
                }
                // Dropping `tx` here closes the queue: workers finish what
                // is queued, then exit.
            })
            .expect("spawn acceptor thread");
        AcceptPool { acceptor: Some(acceptor), workers: worker_handles }
    }

    /// Join the acceptor and every worker. The caller must already have
    /// flipped its drain flag **and woken the acceptor** (a throwaway
    /// connect to the bound address) or the acceptor blocks in `accept`
    /// forever.
    pub(crate) fn join(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, handler: &(dyn Fn(TcpStream) + Send + Sync)) {
    loop {
        // Holding the lock while blocked in `recv` is the queue discipline:
        // idle workers line up on the mutex, one wakes per connection.
        let next = {
            let rx = rx.lock().unwrap_or_else(PoisonError::into_inner);
            rx.recv()
        };
        match next {
            Ok(stream) => handler(stream),
            Err(_) => break, // acceptor gone and queue empty
        }
    }
}
