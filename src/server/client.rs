//! A small blocking client for the `mhxd` wire protocol, used by the
//! integration tests, `mhxq --connect`, and the `serve` load-generator
//! bench. One [`Client`] holds one keep-alive TCP connection — i.e. one
//! server-side [`Session`](crate::engine::Session) — so prepared handles
//! and per-connection options behave exactly as they do server-side.

use crate::engine::QueryLang;
use crate::server::wire::WireOutcome;
use mhx_json::Json;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, connection closed).
    Io(io::Error),
    /// The response was not valid HTTP/JSON for this protocol.
    Protocol(String),
    /// The server answered with an error envelope.
    Server {
        status: u16,
        /// The wire error kind (`parse`, `eval`, `unknown_document`, …).
        kind: String,
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { status, kind, message } => {
                write!(f, "server error {status} ({kind}): {message}")
            }
        }
    }
}

impl ClientError {
    /// True for failures a replica-aware caller (the `mhxr` shard router,
    /// or any client holding several backend addresses) should retry
    /// against another backend: transport and framing failures, and the
    /// server's typed `503`/`shutting_down` drain signal. Queries are
    /// read-only and uploads idempotent (documents are immutable after
    /// upload), so re-sending is always safe. Engine errors (4xx/422)
    /// are deterministic — the same request fails the same way on every
    /// replica — and the router's own `502`/`bad_gateway` means every
    /// replica was already tried; neither is retryable.
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Io(_) | ClientError::Protocol(_) => true,
            ClientError::Server { status, kind, .. } => *status == 503 && kind == "shutting_down",
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A blocking keep-alive connection to an `mhxd` server.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connect to `addr` — `host:port`, optionally prefixed with
    /// `http://` and/or suffixed with `/` (so a pasted URL works).
    pub fn connect(addr: &str) -> io::Result<Client> {
        let addr = addr.strip_prefix("http://").unwrap_or(addr).trim_end_matches('/');
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        // A generous timeout so a hung server fails tests instead of
        // wedging them.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
        Ok(Client { stream, buf: Vec::new() })
    }

    /// Low-level exchange: send `method path` with an optional JSON body,
    /// return `(status, parsed body)` without interpreting the envelope.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<(u16, Json), ClientError> {
        let payload = body.map(Json::to_string).unwrap_or_default();
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: mhxd\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n",
            payload.len()
        );
        let mut out = Vec::with_capacity(head.len() + payload.len());
        out.extend_from_slice(head.as_bytes());
        out.extend_from_slice(payload.as_bytes());
        self.stream.write_all(&out)?;
        self.stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<(u16, Json), ClientError> {
        let mut chunk = [0u8; 8 * 1024];
        loop {
            if let Some(head_end) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = std::str::from_utf8(&self.buf[..head_end])
                    .map_err(|_| ClientError::Protocol("response head is not UTF-8".into()))?;
                let (status, content_length) = parse_response_head(head)?;
                let total = head_end + 4 + content_length;
                if self.buf.len() >= total {
                    let body = String::from_utf8(self.buf[head_end + 4..total].to_vec())
                        .map_err(|_| ClientError::Protocol("body is not UTF-8".into()))?;
                    self.buf.drain(..total);
                    let json = mhx_json::parse(&body).map_err(|e| {
                        ClientError::Protocol(format!("unparseable body: {e} in `{body}`"))
                    })?;
                    return Ok((status, json));
                }
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection mid-response",
                    )));
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }

    /// `request` + envelope interpretation: non-2xx or `"ok": false`
    /// becomes [`ClientError::Server`].
    pub fn call(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<Json, ClientError> {
        let (status, json) = self.request(method, path, body)?;
        let ok = json.get("ok").and_then(Json::as_bool).unwrap_or(false);
        if (200..300).contains(&status) && ok {
            return Ok(json);
        }
        let (kind, message) = match json.get("error") {
            Some(err) => (
                err.get("kind").and_then(Json::as_str).unwrap_or("unknown").to_string(),
                err.get("message").and_then(Json::as_str).unwrap_or("").to_string(),
            ),
            None => ("unknown".to_string(), json.to_string()),
        };
        Err(ClientError::Server { status, kind, message })
    }

    /// Run an ad-hoc query against `doc`.
    pub fn query(
        &mut self,
        doc: &str,
        lang: QueryLang,
        src: &str,
    ) -> Result<WireOutcome, ClientError> {
        self.query_with(Some(doc), lang, src, None)
    }

    /// [`Client::query`] with an optional per-connection options patch and
    /// an optional document (server falls back to the pinned/only one).
    pub fn query_with(
        &mut self,
        doc: Option<&str>,
        lang: QueryLang,
        src: &str,
        options: Option<&Json>,
    ) -> Result<WireOutcome, ClientError> {
        let mut body = vec![
            ("lang".to_string(), Json::Str(lang.name().into())),
            ("query".to_string(), Json::Str(src.into())),
        ];
        if let Some(doc) = doc {
            body.push(("doc".into(), Json::Str(doc.into())));
        }
        if let Some(options) = options {
            body.push(("options".into(), options.clone()));
        }
        let json = self.call("POST", "/query", Some(&Json::Obj(body)))?;
        WireOutcome::from_json(&json).map_err(ClientError::Protocol)
    }

    /// Ask the server to render the optimized plan for `src` against
    /// `doc` (or the pinned/only document) instead of evaluating it.
    pub fn explain(
        &mut self,
        doc: Option<&str>,
        lang: QueryLang,
        src: &str,
    ) -> Result<String, ClientError> {
        let mut body = vec![
            ("lang".to_string(), Json::Str(lang.name().into())),
            ("query".to_string(), Json::Str(src.into())),
            ("explain".to_string(), Json::Bool(true)),
        ];
        if let Some(doc) = doc {
            body.push(("doc".into(), Json::Str(doc.into())));
        }
        let json = self.call("POST", "/query", Some(&Json::Obj(body)))?;
        json.get("explain")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("explain response missing `explain`".into()))
    }

    /// Shorthand for an XPath query.
    pub fn xpath(&mut self, doc: &str, src: &str) -> Result<WireOutcome, ClientError> {
        self.query(doc, QueryLang::XPath, src)
    }

    /// Shorthand for an XQuery query.
    pub fn xquery(&mut self, doc: &str, src: &str) -> Result<WireOutcome, ClientError> {
        self.query(doc, QueryLang::XQuery, src)
    }

    /// Compile a prepared statement on this connection; the returned
    /// handle is valid for this connection's lifetime.
    pub fn prepare(&mut self, lang: QueryLang, src: &str) -> Result<u64, ClientError> {
        let body = Json::Obj(vec![
            ("lang".into(), Json::Str(lang.name().into())),
            ("query".into(), Json::Str(src.into())),
        ]);
        let json = self.call("POST", "/prepare", Some(&body))?;
        json.get("handle")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("prepare response missing `handle`".into()))
    }

    /// Execute a prepared handle (against `doc`, or the pinned document).
    pub fn execute(&mut self, handle: u64, doc: Option<&str>) -> Result<WireOutcome, ClientError> {
        let mut body = vec![("handle".to_string(), Json::Num(handle as f64))];
        if let Some(doc) = doc {
            body.push(("doc".into(), Json::Str(doc.into())));
        }
        let json = self.call("POST", "/execute", Some(&Json::Obj(body)))?;
        WireOutcome::from_json(&json).map_err(ClientError::Protocol)
    }

    /// Upload (register or replace) a document from `(name, xml)`
    /// hierarchy pairs. The id travels in the request line, so it is
    /// restricted to URL-safe characters (letters, digits, `-_.~`) —
    /// anything else (spaces, `/`, CR/LF…) is refused client-side rather
    /// than emitting a malformed or header-injecting request.
    pub fn put_document(
        &mut self,
        id: &str,
        hierarchies: &[(&str, &str)],
    ) -> Result<(), ClientError> {
        if id.is_empty()
            || !id.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | '~'))
        {
            return Err(ClientError::Protocol(format!(
                "document id `{id}` is not URL-safe (allowed: ASCII letters, digits, `-_.~`)"
            )));
        }
        let items = hierarchies
            .iter()
            .map(|(name, xml)| {
                Json::Obj(vec![
                    ("name".to_string(), Json::Str((*name).into())),
                    ("xml".to_string(), Json::Str((*xml).into())),
                ])
            })
            .collect();
        let body = Json::Obj(vec![("hierarchies".into(), Json::Arr(items))]);
        self.call("PUT", &format!("/documents/{id}"), Some(&body))?;
        Ok(())
    }

    /// Registered document ids.
    ///
    /// The server reports each document as an object carrying residency
    /// metadata; older servers sent bare id strings. Both shapes are
    /// accepted here so the client keeps working across versions.
    pub fn documents(&mut self) -> Result<Vec<String>, ClientError> {
        let json = self.call("GET", "/documents", None)?;
        json.get("documents")
            .and_then(Json::as_arr)
            .map(|ids| {
                ids.iter()
                    .filter_map(|v| {
                        v.get("id")
                            .and_then(Json::as_str)
                            .or_else(|| v.as_str())
                            .map(str::to_string)
                    })
                    .collect()
            })
            .ok_or_else(|| ClientError::Protocol("documents response missing list".into()))
    }

    /// Registered documents with residency metadata: `(id, residency,
    /// snapshot_bytes)` per document. Bare-string entries from older
    /// servers are reported as resident with no snapshot.
    pub fn document_status(&mut self) -> Result<Vec<(String, String, u64)>, ClientError> {
        let json = self.call("GET", "/documents", None)?;
        json.get("documents")
            .and_then(Json::as_arr)
            .map(|ids| {
                ids.iter()
                    .filter_map(|v| {
                        if let Some(id) = v.get("id").and_then(Json::as_str) {
                            let residency = v
                                .get("residency")
                                .and_then(Json::as_str)
                                .unwrap_or("resident")
                                .to_string();
                            let bytes =
                                v.get("snapshot_bytes").and_then(Json::as_f64).unwrap_or(0.0)
                                    as u64;
                            Some((id.to_string(), residency, bytes))
                        } else {
                            v.as_str().map(|id| (id.to_string(), "resident".to_string(), 0))
                        }
                    })
                    .collect()
            })
            .ok_or_else(|| ClientError::Protocol("documents response missing list".into()))
    }

    /// The raw `/stats` document (cache, eval, server, per-session rows).
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.call("GET", "/stats", None)
    }

    /// Ask the server to drain and stop (the owner loop performs the
    /// actual shutdown).
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.call("POST", "/shutdown", None)?;
        Ok(())
    }
}

fn parse_response_head(head: &str) -> Result<(u16, usize), ClientError> {
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Protocol(format!("bad status line `{status_line}`")))?;
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ClientError::Protocol("bad content-length".into()))?;
            }
        }
    }
    Ok((status, content_length))
}
