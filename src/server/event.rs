//! The evented front end shared by `mhxd` ([`Server`](crate::server::Server))
//! and `mhxr` ([`Router`](crate::server::Router)): one readiness loop owns
//! **every** client socket in nonblocking mode, parses requests
//! incrementally off readiness notifications, and hands complete requests
//! to the small [`DispatchPool`]. Thread count is `workers + 1` (the
//! event loop doubles as the acceptor), independent of connection count —
//! a thousand parked keep-alive clients cost a connection-table entry
//! each, not a thread each.
//!
//! On Linux the loop is raw `epoll(7)` via the same raw-libc discipline
//! the binaries use for `signal(2)` — no tokio, no mio, offline build.
//! Elsewhere a degraded tick-based poller keeps the build portable (see
//! [`sys`]).
//!
//! ## Connection table
//!
//! Connections live in a table keyed by a monotonically increasing
//! **token** (never reused, so a stale readiness event for a closed fd
//! cannot hit a recycled connection). Each entry carries the socket, the
//! incremental parse buffer + scan offset, the parsed-ahead request
//! queue, the ordered output buffer, and the front end's per-connection
//! state ([`Service::Conn`] — session pin, prepared handles, options).
//!
//! ## Pipelining
//!
//! Requests parse ahead into the entry's `pending` queue (bounded by
//! [`PIPELINE_MAX`]); execution stays **serial per connection** — one
//! request in a worker at a time, so per-connection state needs no lock
//! and responses are appended to the output buffer in arrival order. The
//! worker sends the finished state + formatted bytes back through the
//! completion queue and wakes the loop, which dispatches the next pending
//! request. Reads pause (interest is dropped) while the pipeline or the
//! output backlog is over its cap; level-triggered readiness re-fires
//! when interest returns.
//!
//! ## Drain
//!
//! Once [`Service::draining`] flips, the loop stops admitting accepted
//! sockets, closes idle connections within one poll interval, and keeps
//! running until every in-flight request has been *completely written* —
//! a response in progress is never truncated. Half-received requests get
//! the request timeout to finish (the same slow-loris bound that applies
//! while serving), and a hard deadline backstops a peer that never reads
//! its response.

use crate::server::accept::{DispatchPool, Job};
use crate::server::http::{self, ParseError, Request};
use crate::server::wire;
use mhx_json::Json;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// What the event loop needs from a front end. `Conn` is the
/// per-connection state that used to live on a worker's stack; it is
/// `Send + 'static` because it travels into a worker alongside each
/// dispatched request and back through the completion queue.
pub(crate) trait Service: Send + Sync + 'static {
    type Conn: Send + 'static;

    /// A connection was admitted: build its state (and count it).
    fn connect(&self, stream: &TcpStream) -> Self::Conn;

    /// Execute one complete request. Runs on a worker thread; the event
    /// loop guarantees at most one in-flight request per connection.
    fn handle(&self, conn: &mut Self::Conn, req: &Request) -> (u16, Json);

    /// The connection is gone; release its state.
    fn disconnect(&self, conn: Self::Conn);

    /// True once the front end is shutting down.
    fn draining(&self) -> bool;

    /// A request was parsed while an earlier one from the same connection
    /// was still queued or executing (i.e. the client pipelined).
    fn note_pipelined(&self) {}
}

/// The subset of the front ends' config the loop needs.
pub(crate) struct EventConfig {
    /// `epoll_wait` timeout: bounds drain-notice latency and the timeout
    /// sweep cadence.
    pub(crate) poll_interval: Duration,
    /// How long a started (half-received) request may take to arrive.
    pub(crate) request_timeout: Duration,
    /// Maximum request body size in bytes.
    pub(crate) max_body: usize,
    /// Close a keep-alive connection that has been completely idle (no
    /// half-received request, nothing queued or in flight, output
    /// flushed) for this long. `None` keeps idle connections forever.
    pub(crate) max_idle: Option<Duration>,
}

const TOKEN_LISTENER: u64 = 0;
const FIRST_CONN_TOKEN: u64 = 1;

/// Parse-ahead cap per connection: pipelined requests beyond this stay
/// in the kernel/read buffer until the queue drains.
const PIPELINE_MAX: usize = 64;
/// Output-backlog cap per connection before reads pause (a client that
/// pipelines but never reads responses must not buffer unbounded).
const OUT_MAX: usize = 1 << 20;
/// Read chunk size per readiness notification.
const CHUNK: usize = 16 * 1024;
/// Hard backstop for drain: after this, still-open connections (a peer
/// not reading its response, a half-request that never finished) are
/// force-closed so shutdown terminates. In-flight *execution* is bounded
/// by the engine's own drain, which the owner runs after the loop exits.
const DRAIN_DEADLINE: Duration = Duration::from_secs(30);

/// Handle to a running event loop + its worker pool.
pub(crate) struct EventLoop {
    thread: Option<thread::JoinHandle<()>>,
    pool: DispatchPool,
    waker: sys::Waker,
}

impl EventLoop {
    /// Start the loop thread (named `{name}-event-loop`) plus `workers`
    /// dispatch workers. The listener is moved into the loop, which also
    /// accepts — no separate acceptor thread.
    pub(crate) fn start<S: Service>(
        listener: TcpListener,
        name: &str,
        workers: usize,
        cfg: EventConfig,
        service: Arc<S>,
    ) -> io::Result<EventLoop> {
        listener.set_nonblocking(true)?;
        let (mut poller, waker) = sys::Poller::new()?;
        poller.register(raw_fd(&listener), TOKEN_LISTENER, true, false)?;
        let pool = DispatchPool::start(name, workers);
        let lp = Loop {
            poller,
            listener,
            service,
            cfg,
            jobs: pool.sender(),
            completions: Arc::new(Mutex::new(VecDeque::new())),
            waker: waker.clone(),
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
        };
        let thread = thread::Builder::new()
            .name(format!("{name}-event-loop"))
            .spawn(move || lp.run())
            .expect("spawn event loop thread");
        Ok(EventLoop { thread: Some(thread), pool, waker })
    }

    /// Join everything. The caller must have flipped its drain flag
    /// first; the wake-up makes the loop notice immediately instead of
    /// one poll interval later.
    pub(crate) fn shutdown(&mut self) {
        self.waker.wake();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        // The loop thread's job sender is gone with it; closing ours
        // drains the queue and the workers exit.
        self.pool.join();
    }
}

/// A finished request on its way back from a worker.
struct Completion<C> {
    token: u64,
    state: C,
    bytes: Vec<u8>,
    keep: bool,
}

type CompletionQueue<C> = Arc<Mutex<VecDeque<Completion<C>>>>;

/// One connection's slot in the table.
struct ConnEntry<C> {
    stream: TcpStream,
    fd: i32,
    /// Unparsed inbound bytes + the head-search resume offset.
    buf: Vec<u8>,
    scan: usize,
    /// Ordered outbound bytes; `out_pos` is the flush frontier.
    out: Vec<u8>,
    out_pos: usize,
    /// Complete requests parsed ahead of execution (pipelining).
    pending: VecDeque<Request>,
    /// The front end's per-connection state; `None` exactly while a
    /// worker holds it (`in_worker`).
    state: Option<C>,
    in_worker: bool,
    close_after_flush: bool,
    /// A protocol-error response (400/408/413) waiting for the in-flight
    /// request (if any) to finish, so ordering holds even on errors.
    fatal: Option<Vec<u8>>,
    /// Peer half-closed its write side; serve what's queued, then close.
    read_closed: bool,
    want_read: bool,
    want_write: bool,
    /// When the currently half-received request started arriving
    /// (slow-loris bound).
    partial_since: Option<Instant>,
    /// Last time the connection did anything (accepted, bytes read, a
    /// response completed) — the idle keep-alive eviction clock.
    last_activity: Instant,
}

struct Loop<S: Service> {
    poller: sys::Poller,
    listener: TcpListener,
    service: Arc<S>,
    cfg: EventConfig,
    jobs: Sender<Job>,
    completions: CompletionQueue<S::Conn>,
    waker: sys::Waker,
    conns: HashMap<u64, ConnEntry<S::Conn>>,
    next_token: u64,
}

impl<S: Service> Loop<S> {
    fn run(mut self) {
        let mut events: Vec<sys::Event> = Vec::new();
        let mut drain_started: Option<Instant> = None;
        loop {
            self.poller.wait(&mut events, self.cfg.poll_interval);
            for ev in std::mem::take(&mut events) {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    token => self.conn_ready(token, ev.readable, ev.writable),
                }
            }
            self.drain_completions();
            self.sweep_timeouts();
            if self.service.draining() {
                let t0 = *drain_started.get_or_insert_with(Instant::now);
                self.close_idle_for_drain();
                if self.conns.is_empty() {
                    break;
                }
                if t0.elapsed() > DRAIN_DEADLINE {
                    for token in self.conns.keys().copied().collect::<Vec<_>>() {
                        self.close_now(token);
                    }
                    break;
                }
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.service.draining() {
                        continue; // reject: drop the socket immediately
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let fd = raw_fd(&stream);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self.poller.register(fd, token, true, false).is_err() {
                        continue;
                    }
                    let state = self.service.connect(&stream);
                    self.conns.insert(
                        token,
                        ConnEntry {
                            stream,
                            fd,
                            buf: Vec::new(),
                            scan: 0,
                            out: Vec::new(),
                            out_pos: 0,
                            pending: VecDeque::new(),
                            state: Some(state),
                            in_worker: false,
                            close_after_flush: false,
                            fatal: None,
                            read_closed: false,
                            want_read: true,
                            want_write: false,
                            partial_since: None,
                            last_activity: Instant::now(),
                        },
                    );
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                // EMFILE and friends: stop for this round; level-triggered
                // readiness retries on the next wait.
                Err(_) => break,
            }
        }
    }

    fn conn_ready(&mut self, token: u64, readable: bool, writable: bool) {
        if writable {
            self.flush(token);
        }
        let mut read_some = false;
        {
            let Some(entry) = self.conns.get_mut(&token) else { return };
            if readable && entry.want_read && !entry.read_closed {
                let mut chunk = [0u8; CHUNK];
                match entry.stream.read(&mut chunk) {
                    Ok(0) => entry.read_closed = true,
                    Ok(n) => {
                        entry.buf.extend_from_slice(&chunk[..n]);
                        entry.last_activity = Instant::now();
                        read_some = true;
                    }
                    Err(ref e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
                        ) => {}
                    Err(_) => {
                        // Abrupt disconnect (reset mid-request): nothing
                        // can be sent back; free the slot now.
                        self.close_now(token);
                        return;
                    }
                }
            }
        }
        if read_some || self.conns.get(&token).is_some_and(|e| e.read_closed) {
            self.pump(token);
        }
    }

    /// Parse whatever is buffered, dispatch if the connection is free,
    /// refresh readiness interest, and flush. Safe to call whenever a
    /// connection's inputs changed (bytes read, completion landed,
    /// timeout fired).
    fn pump(&mut self, token: u64) {
        let mut pipelined = 0u32;
        {
            let Some(entry) = self.conns.get_mut(&token) else { return };
            let mut incomplete = false;
            while entry.fatal.is_none()
                && entry.pending.len() < PIPELINE_MAX
                && entry.out.len() - entry.out_pos < OUT_MAX
            {
                match http::try_parse(&mut entry.buf, &mut entry.scan, self.cfg.max_body) {
                    Ok(Some(req)) => {
                        if entry.in_worker || !entry.pending.is_empty() {
                            pipelined += 1;
                        }
                        entry.pending.push_back(req);
                    }
                    Ok(None) => {
                        incomplete = !entry.buf.is_empty();
                        break;
                    }
                    Err(ParseError::Bad(message)) => {
                        let body = wire::protocol_error_body("bad_request", &message);
                        entry.fatal = Some(http::format_response(400, &body.to_string(), false));
                    }
                    Err(ParseError::TooLarge) => {
                        let body =
                            wire::protocol_error_body("too_large", "request exceeds size limits");
                        entry.fatal = Some(http::format_response(413, &body.to_string(), false));
                    }
                }
            }
            entry.partial_since = if incomplete {
                entry.partial_since.or_else(|| Some(Instant::now()))
            } else {
                None
            };
            if entry.fatal.is_some() {
                // A protocol error poisons the connection: drop parsed-
                // ahead requests (the in-flight one still completes first)
                // and everything unread.
                entry.pending.clear();
                entry.buf.clear();
                entry.scan = 0;
                entry.partial_since = None;
            }
            if entry.read_closed && incomplete {
                // Peer quit mid-request; there is nothing to answer.
                entry.buf.clear();
                entry.scan = 0;
                entry.partial_since = None;
            }
        }
        for _ in 0..pipelined {
            self.service.note_pipelined();
        }
        self.dispatch(token);
        self.update_interest(token);
        self.flush(token);
    }

    /// Hand the next pending request to a worker (serial per connection),
    /// or emit a queued fatal response once the line is free.
    fn dispatch(&mut self, token: u64) {
        let service = Arc::clone(&self.service);
        let completions = Arc::clone(&self.completions);
        let waker = self.waker.clone();
        let mut job: Option<Job> = None;
        {
            let Some(entry) = self.conns.get_mut(&token) else { return };
            if entry.in_worker || entry.close_after_flush {
                return;
            }
            if entry.fatal.is_none() {
                if let Some(req) = entry.pending.pop_front() {
                    let state = entry.state.take().expect("state present when not in a worker");
                    entry.in_worker = true;
                    job = Some(Box::new(move || {
                        let mut state = state;
                        let (status, body) = service.handle(&mut state, &req);
                        // Keep-alive folds the client's wish and the drain
                        // state, exactly like the worker-per-connection
                        // front end did.
                        let keep = !req.close && !service.draining();
                        let bytes = http::format_response(status, &body.to_string(), keep);
                        completions
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .push_back(Completion { token, state, bytes, keep });
                        waker.wake();
                    }));
                }
            } else if let Some(bytes) = entry.fatal.take() {
                entry.out.extend_from_slice(&bytes);
                entry.close_after_flush = true;
            }
        }
        if let Some(job) = job {
            let _ = self.jobs.send(job);
        }
    }

    fn drain_completions(&mut self) {
        loop {
            let next = {
                let mut q = self.completions.lock().unwrap_or_else(PoisonError::into_inner);
                q.pop_front()
            };
            let Some(c) = next else { break };
            match self.conns.get_mut(&c.token) {
                // The connection died while its request ran; the response
                // has nowhere to go, but the state still must be released.
                None => self.service.disconnect(c.state),
                Some(entry) => {
                    entry.in_worker = false;
                    entry.state = Some(c.state);
                    entry.last_activity = Instant::now();
                    entry.out.extend_from_slice(&c.bytes);
                    if !c.keep {
                        entry.close_after_flush = true;
                        entry.pending.clear();
                    }
                    self.pump(c.token);
                }
            }
        }
    }

    /// 408 any connection whose half-received request outlived the
    /// request timeout — a byte-trickling client costs a table entry,
    /// never a worker, and not forever.
    fn sweep_timeouts(&mut self) {
        let timeout = self.cfg.request_timeout;
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, e)| e.partial_since.is_some_and(|t| t.elapsed() > timeout))
            .map(|(t, _)| *t)
            .collect();
        for token in expired {
            if let Some(entry) = self.conns.get_mut(&token) {
                let body = wire::protocol_error_body("timeout", "request did not complete");
                entry.fatal = Some(http::format_response(408, &body.to_string(), false));
                entry.partial_since = None;
            }
            self.pump(token);
        }
        self.sweep_idle();
    }

    /// Close keep-alive connections that have been completely idle past
    /// `max_idle`: no half-received request (that is the slow-loris
    /// sweep's job), nothing queued or in flight, output fully flushed.
    /// Rides the same poll-interval cadence as the timeout sweep.
    fn sweep_idle(&mut self) {
        let Some(max_idle) = self.cfg.max_idle else { return };
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, e)| {
                !e.in_worker
                    && e.pending.is_empty()
                    && e.out_pos >= e.out.len()
                    && e.fatal.is_none()
                    && e.partial_since.is_none()
                    && e.last_activity.elapsed() > max_idle
            })
            .map(|(t, _)| *t)
            .collect();
        for token in idle {
            self.close_now(token);
        }
    }

    /// During drain, close connections with nothing queued, nothing
    /// buffered, and nothing in flight. Everything else finishes first.
    fn close_idle_for_drain(&mut self) {
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, e)| {
                // A half-received request (non-empty `buf`) does not make a
                // connection busy: drain never waits on bytes that may never
                // arrive, only on responses already owed.
                !e.in_worker
                    && e.pending.is_empty()
                    && e.out_pos >= e.out.len()
                    && e.fatal.is_none()
            })
            .map(|(t, _)| *t)
            .collect();
        for token in idle {
            self.close_now(token);
        }
    }

    fn flush(&mut self, token: u64) {
        let mut close = false;
        {
            let Some(entry) = self.conns.get_mut(&token) else { return };
            loop {
                if entry.out_pos >= entry.out.len() {
                    entry.out.clear();
                    entry.out_pos = 0;
                    break;
                }
                match entry.stream.write(&entry.out[entry.out_pos..]) {
                    Ok(0) => {
                        close = true;
                        break;
                    }
                    Ok(n) => entry.out_pos += n,
                    Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                        // Reclaim the flushed prefix so a slow reader's
                        // backlog doesn't grow monotonically.
                        if entry.out_pos > 0 {
                            entry.out.drain(..entry.out_pos);
                            entry.out_pos = 0;
                        }
                        break;
                    }
                    Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        close = true;
                        break;
                    }
                }
            }
            if !close && entry.out.is_empty() {
                let served_out = entry.close_after_flush
                    || (entry.read_closed
                        && !entry.in_worker
                        && entry.pending.is_empty()
                        && entry.fatal.is_none());
                if served_out {
                    close = true;
                }
            }
        }
        if close {
            self.close_now(token);
        } else {
            self.update_interest(token);
        }
    }

    fn update_interest(&mut self, token: u64) {
        let Some(entry) = self.conns.get_mut(&token) else { return };
        let backlog = entry.out.len() - entry.out_pos;
        let read = !entry.read_closed
            && entry.fatal.is_none()
            && !entry.close_after_flush
            && entry.pending.len() < PIPELINE_MAX
            && backlog < OUT_MAX;
        let write = backlog > 0;
        if read != entry.want_read || write != entry.want_write {
            entry.want_read = read;
            entry.want_write = write;
            let _ = self.poller.modify(entry.fd, token, read, write);
        }
    }

    fn close_now(&mut self, token: u64) {
        if let Some(entry) = self.conns.remove(&token) {
            let _ = self.poller.deregister(entry.fd, token);
            if let Some(state) = entry.state {
                self.service.disconnect(state);
            }
            // `in_worker` state comes home via the completion queue and
            // is disconnected there.
        }
    }
}

#[cfg(unix)]
fn raw_fd<T: std::os::unix::io::AsRawFd>(t: &T) -> i32 {
    t.as_raw_fd()
}
#[cfg(not(unix))]
fn raw_fd<T>(_t: &T) -> i32 {
    -1
}

/// Readiness backends. Linux gets the real thing — raw `epoll(7)` plus a
/// self-pipe waker, std-only via `extern "C"` like the binaries' signal
/// handling. Other platforms get a tick poller: every registered
/// connection is reported maybe-ready each short tick and the
/// nonblocking reads/writes discover the truth — degraded (O(conns) per
/// tick) but correct, and it keeps the crate building everywhere.
#[cfg(target_os = "linux")]
mod sys {
    use std::io;
    use std::sync::Arc;
    use std::time::Duration;

    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0x80000;
    const O_NONBLOCK: i32 = 0x800;
    const O_CLOEXEC: i32 = 0x80000;

    /// Matches the kernel ABI: packed on x86_64 only.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn pipe2(fds: *mut i32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    /// The waker's pipe read end lives under this reserved token; the
    /// poller drains it internally and never reports it.
    const WAKE_TOKEN: u64 = u64::MAX;

    pub(super) struct Event {
        pub(super) token: u64,
        pub(super) readable: bool,
        pub(super) writable: bool,
    }

    pub(super) struct Poller {
        ep: i32,
        wake_rx: i32,
    }

    /// Write end of the self-pipe; one byte makes `wait` return early.
    /// Cloned into every worker job.
    #[derive(Clone)]
    pub(super) struct Waker(Arc<WakeFd>);

    struct WakeFd(i32);

    impl Drop for WakeFd {
        fn drop(&mut self) {
            unsafe { close(self.0) };
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.wake_rx);
                close(self.ep);
            }
        }
    }

    fn interest(read: bool, write: bool) -> u32 {
        let mut events = 0;
        if read {
            events |= EPOLLIN;
        }
        if write {
            events |= EPOLLOUT;
        }
        events
    }

    impl Poller {
        pub(super) fn new() -> io::Result<(Poller, Waker)> {
            let ep = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if ep < 0 {
                return Err(io::Error::last_os_error());
            }
            let mut fds = [0i32; 2];
            if unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) } < 0 {
                let e = io::Error::last_os_error();
                unsafe { close(ep) };
                return Err(e);
            }
            let poller = Poller { ep, wake_rx: fds[0] };
            let waker = Waker(Arc::new(WakeFd(fds[1])));
            poller.ctl(EPOLL_CTL_ADD, fds[0], WAKE_TOKEN, EPOLLIN)?;
            Ok((poller, waker))
        }

        fn ctl(&self, op: i32, fd: i32, token: u64, events: u32) -> io::Result<()> {
            let mut ev = EpollEvent { events, data: token };
            if unsafe { epoll_ctl(self.ep, op, fd, &mut ev) } < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(())
            }
        }

        pub(super) fn register(&mut self, fd: i32, token: u64, r: bool, w: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest(r, w))
        }

        pub(super) fn modify(&mut self, fd: i32, token: u64, r: bool, w: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest(r, w))
        }

        pub(super) fn deregister(&mut self, fd: i32, _token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        pub(super) fn wait(&mut self, out: &mut Vec<Event>, timeout: Duration) {
            out.clear();
            let mut evs = [EpollEvent { events: 0, data: 0 }; 256];
            let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
            let n = unsafe { epoll_wait(self.ep, evs.as_mut_ptr(), evs.len() as i32, ms) };
            if n <= 0 {
                return; // timeout, or EINTR — the caller just loops
            }
            for ev in evs.iter().take(n as usize) {
                // By-value copies: fields of a packed struct must not be
                // borrowed.
                let (events, token) = (ev.events, ev.data);
                if token == WAKE_TOKEN {
                    let mut sink = [0u8; 64];
                    while unsafe { read(self.wake_rx, sink.as_mut_ptr(), sink.len()) } > 0 {}
                    continue;
                }
                // ERR/HUP surface as readability/writability so the
                // nonblocking I/O discovers the condition and closes.
                out.push(Event {
                    token,
                    readable: events & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0,
                    writable: events & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
        }
    }

    impl Waker {
        pub(super) fn wake(&self) {
            let byte = 1u8;
            // A full pipe is fine: the loop is already awake-pending.
            unsafe { write(self.0 .0, &byte, 1) };
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use std::collections::HashMap;
    use std::io;
    use std::time::Duration;

    pub(super) struct Event {
        pub(super) token: u64,
        pub(super) readable: bool,
        pub(super) writable: bool,
    }

    pub(super) struct Poller {
        interests: HashMap<u64, (bool, bool)>,
    }

    /// No self-pipe on the tick poller: the short tick bounds completion
    /// latency instead.
    #[derive(Clone)]
    pub(super) struct Waker;

    impl Poller {
        pub(super) fn new() -> io::Result<(Poller, Waker)> {
            Ok((Poller { interests: HashMap::new() }, Waker))
        }

        pub(super) fn register(
            &mut self,
            _fd: i32,
            token: u64,
            r: bool,
            w: bool,
        ) -> io::Result<()> {
            self.interests.insert(token, (r, w));
            Ok(())
        }

        pub(super) fn modify(&mut self, _fd: i32, token: u64, r: bool, w: bool) -> io::Result<()> {
            self.interests.insert(token, (r, w));
            Ok(())
        }

        pub(super) fn deregister(&mut self, _fd: i32, token: u64) -> io::Result<()> {
            self.interests.remove(&token);
            Ok(())
        }

        pub(super) fn wait(&mut self, out: &mut Vec<Event>, timeout: Duration) {
            out.clear();
            std::thread::sleep(timeout.min(Duration::from_millis(5)));
            for (&token, &(r, w)) in &self.interests {
                if r || w {
                    out.push(Event { token, readable: r, writable: w });
                }
            }
        }
    }

    impl Waker {
        pub(super) fn wake(&self) {}
    }
}
