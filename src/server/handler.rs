//! Request handling for the daemon: the endpoint router plus the owned
//! per-connection state (pinned document, prepared-statement table,
//! evaluation options) that lives in the event loop's connection table
//! and travels into a worker with each request.
//!
//! Endpoints (all bodies JSON, see [`super::wire`]):
//!
//! | method | path               | action                                    |
//! |--------|--------------------|-------------------------------------------|
//! | GET    | `/healthz`         | liveness probe                            |
//! | POST   | `/query`           | ad-hoc query `{doc?, lang?, query, options?}` |
//! | POST   | `/prepare`         | compile `{lang?, query}` → `{handle}`     |
//! | POST   | `/execute`         | run a prepared handle `{handle, doc?}`    |
//! | PUT    | `/documents/{id}`  | upload `{hierarchies: [{name, xml}…]}`    |
//! | GET    | `/documents`       | list documents with residency + snapshot size |
//! | GET    | `/stats`           | cache/eval/server/store + per-session counters |
//! | POST   | `/shutdown`        | request graceful drain                    |

use crate::engine::{Catalog, EngineError, EvalStats, QueryLang, Session};
use crate::server::http::Request;
use crate::server::wire;
use crate::server::{ConnStats, Shared};
use mhx_goddag::GoddagBuilder;
use mhx_json::Json;
use mhx_xquery::EvalOptions;
use std::sync::atomic::Ordering;

/// Cap on prepared statements per connection: compiled plans held outside
/// the LRU cache must stay bounded, mirroring the cache's own capacity.
/// The router enforces the same cap on its own handle table.
pub(crate) const MAX_PREPARED_PER_CONN: usize = 256;

/// Mutable per-connection state. Owned (`'static`) so it can live in the
/// event loop's connection table and move into workers: instead of
/// holding a borrowing [`Session`] across requests, the connection pins a
/// *document id* and opens a short-lived session per request
/// ([`pin_session`]) — sessions are cheap handles, and the per-session
/// evaluation counters are folded into `totals` as each one is dropped.
pub(crate) struct ConnState {
    /// The pinned document requests default to when they carry no `doc`.
    doc: Option<String>,
    prepared: Vec<crate::engine::Prepared>,
    /// The connection's evaluation options (survive document re-pins).
    opts: EvalOptions,
    /// Evaluation counters accumulated across this connection's requests.
    totals: EvalStats,
}

impl ConnState {
    pub(crate) fn new(opts: EvalOptions) -> ConnState {
        ConnState { doc: None, prepared: Vec::new(), opts, totals: EvalStats::default() }
    }

    pub(crate) fn eval_stats(&self) -> EvalStats {
        self.totals
    }
}

/// Route one parsed request. Runs on a dispatch worker; the event loop
/// guarantees requests from one connection arrive here serially.
pub(crate) fn route(
    shared: &Shared,
    catalog: &Catalog,
    conn: &ConnStats,
    state: &mut ConnState,
    req: &Request,
) -> (u16, Json) {
    // Resolve the path first, then the method: a known path with the
    // wrong method is always a 405, without a second hand-maintained
    // list of routes that could drift.
    let method = req.method.as_str();
    let wrong_method =
        || (405, wire::protocol_error_body("method_not_allowed", "wrong method for this path"));
    match req.path.as_str() {
        "/healthz" | "/" => match method {
            "GET" => (200, Json::Obj(vec![("ok".into(), Json::Bool(true))])),
            _ => wrong_method(),
        },
        "/query" => match method {
            "POST" => query_endpoint(catalog, conn, state, req),
            _ => wrong_method(),
        },
        "/prepare" => match method {
            "POST" => prepare_endpoint(catalog, state, req),
            _ => wrong_method(),
        },
        "/execute" => match method {
            "POST" => execute_endpoint(catalog, conn, state, req),
            _ => wrong_method(),
        },
        "/documents" => match method {
            "GET" => {
                let docs = catalog
                    .document_status()
                    .into_iter()
                    .map(|(id, residency, bytes)| {
                        Json::Obj(vec![
                            ("id".into(), Json::Str(id)),
                            ("residency".into(), Json::Str(residency.name().into())),
                            ("snapshot_bytes".into(), Json::Num(bytes as f64)),
                        ])
                    })
                    .collect();
                (
                    200,
                    Json::Obj(vec![
                        ("ok".into(), Json::Bool(true)),
                        ("documents".into(), Json::Arr(docs)),
                    ]),
                )
            }
            _ => wrong_method(),
        },
        "/stats" => match method {
            "GET" => (200, stats_body(shared, catalog)),
            _ => wrong_method(),
        },
        "/shutdown" => match method {
            "POST" => {
                shared.shutdown_requested.store(true, Ordering::SeqCst);
                (
                    200,
                    Json::Obj(vec![
                        ("ok".into(), Json::Bool(true)),
                        ("draining".into(), Json::Bool(true)),
                    ]),
                )
            }
            _ => wrong_method(),
        },
        path if path.strip_prefix("/documents/").is_some_and(|id| !id.is_empty()) => {
            let id = path.strip_prefix("/documents/").expect("guard matched");
            match method {
                "PUT" => upload_endpoint(catalog, id, req),
                _ => wrong_method(),
            }
        }
        path => (404, wire::protocol_error_body("not_found", &format!("no route for `{path}`"))),
    }
}

/// Parse the request body as a JSON object; protocol error otherwise.
/// Shared with the router, whose endpoints frame bodies identically.
pub(crate) fn body_object(req: &Request) -> Result<Json, (u16, Json)> {
    let text = req
        .body_str()
        .ok_or_else(|| (400, wire::protocol_error_body("bad_json", "body is not UTF-8")))?;
    let json =
        mhx_json::parse(text).map_err(|e| (400, wire::protocol_error_body("bad_json", &e)))?;
    if json.as_obj().is_none() {
        return Err((400, wire::protocol_error_body("bad_json", "body must be a JSON object")));
    }
    Ok(json)
}

fn engine_failure(e: &EngineError) -> (u16, Json) {
    (wire::status_for(e), wire::engine_error_body(e))
}

/// Resolve the request's target document: explicit `doc` field, else the
/// connection's pinned document, else the catalog's only document.
fn target_doc(catalog: &Catalog, state: &ConnState, body: &Json) -> Result<String, (u16, Json)> {
    if let Some(doc) = body.get("doc") {
        return doc.as_str().map(str::to_string).ok_or_else(|| {
            (400, wire::protocol_error_body("bad_request", "`doc` must be a string"))
        });
    }
    if let Some(doc) = &state.doc {
        return Ok(doc.clone());
    }
    let ids = catalog.document_ids();
    if ids.len() == 1 {
        return Ok(ids.into_iter().next().expect("len checked"));
    }
    Err((
        400,
        wire::protocol_error_body(
            "no_document",
            "no `doc` given, none pinned, and the catalog has several documents",
        ),
    ))
}

/// Open this request's session on `doc` with the connection's options,
/// and remember the pin for later requests that omit `doc`.
fn pin_session<'c>(
    catalog: &'c Catalog,
    conn: &ConnStats,
    state: &mut ConnState,
    doc: &str,
) -> Result<Session<'c>, (u16, Json)> {
    let session =
        catalog.session(doc).map_err(|e| engine_failure(&e))?.with_options(state.opts.clone());
    if state.doc.as_deref() != Some(doc) {
        state.doc = Some(doc.to_string());
        conn.set_doc(doc);
    }
    Ok(session)
}

/// Shared tail of `/query` and `/execute`: resolve the document, open the
/// request's session, run `f`, fold the session's counters into the
/// connection totals.
fn with_session(
    catalog: &Catalog,
    conn: &ConnStats,
    state: &mut ConnState,
    body: &Json,
    f: impl FnOnce(&Session<'_>, &ConnState) -> Result<crate::engine::QueryOutcome, EngineError>,
) -> (u16, Json) {
    if let Err(err) = apply_request_options(state, body) {
        return err;
    }
    let doc = match target_doc(catalog, state, body) {
        Ok(doc) => doc,
        Err(err) => return err,
    };
    let session = match pin_session(catalog, conn, state, &doc) {
        Ok(session) => session,
        Err(err) => return err,
    };
    let result = f(&session, &*state);
    state.totals.absorb(&session.eval_stats());
    match result {
        Ok(out) => (200, wire::outcome_body(&out)),
        Err(e) => engine_failure(&e),
    }
}

/// Apply a request's `"options"` patch onto the connection; the next
/// [`pin_session`] picks it up.
fn apply_request_options(state: &mut ConnState, body: &Json) -> Result<(), (u16, Json)> {
    if let Some(options) = body.get("options") {
        if let Err(message) = wire::apply_options(&mut state.opts, options) {
            return Err((400, wire::protocol_error_body("bad_options", &message)));
        }
    }
    Ok(())
}

fn query_endpoint(
    catalog: &Catalog,
    conn: &ConnStats,
    state: &mut ConnState,
    req: &Request,
) -> (u16, Json) {
    let body = match body_object(req) {
        Ok(b) => b,
        Err(err) => return err,
    };
    let Some(src) = body.get("query").and_then(Json::as_str).map(str::to_string) else {
        return (400, wire::protocol_error_body("bad_request", "missing string field `query`"));
    };
    let lang = match parse_lang_field(&body) {
        Ok(lang) => lang,
        Err(err) => return err,
    };
    let explain = match body.get("explain") {
        None => false,
        Some(v) => match v.as_bool() {
            Some(b) => b,
            None => {
                return (
                    400,
                    wire::protocol_error_body("bad_request", "`explain` must be a boolean"),
                );
            }
        },
    };
    if explain {
        // Same resolution flow as a real query (options patch, doc
        // defaulting, document pin) so explain-then-query behaves
        // identically — but the plan is rendered, not evaluated.
        if let Err(err) = apply_request_options(state, &body) {
            return err;
        }
        let doc = match target_doc(catalog, state, &body) {
            Ok(doc) => doc,
            Err(err) => return err,
        };
        if let Err(err) = pin_session(catalog, conn, state, &doc) {
            return err;
        }
        return match catalog.explain(&doc, lang, &src) {
            Ok(text) => (200, wire::explain_body(lang, &text)),
            Err(e) => engine_failure(&e),
        };
    }
    with_session(catalog, conn, state, &body, |session, _| session.query(lang, &src))
}

fn parse_lang_field(body: &Json) -> Result<QueryLang, (u16, Json)> {
    match body.get("lang") {
        None => Ok(QueryLang::XQuery),
        Some(v) => v.as_str().and_then(wire::parse_lang).ok_or_else(|| {
            (400, wire::protocol_error_body("bad_request", "`lang` must be `xpath` or `xquery`"))
        }),
    }
}

fn prepare_endpoint(catalog: &Catalog, state: &mut ConnState, req: &Request) -> (u16, Json) {
    let body = match body_object(req) {
        Ok(b) => b,
        Err(err) => return err,
    };
    let Some(src) = body.get("query").and_then(Json::as_str) else {
        return (400, wire::protocol_error_body("bad_request", "missing string field `query`"));
    };
    let lang = match parse_lang_field(&body) {
        Ok(lang) => lang,
        Err(err) => return err,
    };
    if state.prepared.len() >= MAX_PREPARED_PER_CONN {
        return (
            400,
            wire::protocol_error_body(
                "too_many_prepared",
                &format!("this connection already holds {MAX_PREPARED_PER_CONN} prepared queries"),
            ),
        );
    }
    match catalog.prepare(lang, src) {
        Ok(prepared) => {
            state.prepared.push(prepared);
            let handle = state.prepared.len() - 1;
            (
                200,
                Json::Obj(vec![
                    ("ok".into(), Json::Bool(true)),
                    ("handle".into(), Json::Num(handle as f64)),
                    ("lang".into(), Json::Str(lang.name().into())),
                ]),
            )
        }
        Err(e) => engine_failure(&e),
    }
}

fn execute_endpoint(
    catalog: &Catalog,
    conn: &ConnStats,
    state: &mut ConnState,
    req: &Request,
) -> (u16, Json) {
    let body = match body_object(req) {
        Ok(b) => b,
        Err(err) => return err,
    };
    let Some(handle) = body.get("handle").and_then(Json::as_u64) else {
        return (400, wire::protocol_error_body("bad_request", "missing integer field `handle`"));
    };
    if handle as usize >= state.prepared.len() {
        return (
            404,
            wire::protocol_error_body(
                "unknown_handle",
                &format!("no prepared query with handle {handle} on this connection"),
            ),
        );
    }
    with_session(catalog, conn, state, &body, |session, state| {
        session.run(&state.prepared[handle as usize])
    })
}

fn upload_endpoint(catalog: &Catalog, id: &str, req: &Request) -> (u16, Json) {
    if catalog.is_shutting_down() {
        return engine_failure(&EngineError::ShuttingDown);
    }
    let body = match body_object(req) {
        Ok(b) => b,
        Err(err) => return err,
    };
    let Some(hierarchies) = body.get("hierarchies").and_then(Json::as_arr) else {
        return (400, wire::protocol_error_body("bad_request", "missing array `hierarchies`"));
    };
    if hierarchies.is_empty() {
        return (400, wire::protocol_error_body("bad_request", "`hierarchies` must be non-empty"));
    }
    let mut builder = GoddagBuilder::new();
    for h in hierarchies {
        let (Some(name), Some(xml)) =
            (h.get("name").and_then(Json::as_str), h.get("xml").and_then(Json::as_str))
        else {
            return (
                400,
                wire::protocol_error_body(
                    "bad_request",
                    "each hierarchy needs string fields `name` and `xml`",
                ),
            );
        };
        builder = builder.hierarchy(name, xml);
    }
    match builder.build() {
        // `put`, not `insert`: with a data directory attached the upload
        // is persisted before it is served (a failed write is a 500 and
        // registers nothing).
        Ok(goddag) => match catalog.put(id, goddag) {
            Ok(()) => (
                200,
                Json::Obj(vec![
                    ("ok".into(), Json::Bool(true)),
                    ("id".into(), Json::Str(id.into())),
                    ("hierarchies".into(), Json::Num(hierarchies.len() as f64)),
                ]),
            ),
            Err(e) => engine_failure(&e),
        },
        Err(e) => engine_failure(&EngineError::from(e)),
    }
}

fn stats_body(shared: &Shared, catalog: &Catalog) -> Json {
    let cache = catalog.cache_stats();
    let eval = catalog.eval_stats();
    let sessions: Vec<Json> = shared
        .conn_snapshot()
        .into_iter()
        .map(|c| {
            Json::Obj(vec![
                ("conn".into(), Json::Num(c.id as f64)),
                ("peer".into(), Json::Str(c.peer)),
                ("doc".into(), Json::Str(c.doc)),
                ("requests".into(), Json::Num(c.requests as f64)),
                ("batched_steps".into(), Json::Num(c.eval.batched_steps as f64)),
                ("rewritten_steps".into(), Json::Num(c.eval.rewritten_steps as f64)),
                ("plan_rewrites".into(), Json::Num(c.eval.plan_rewrites as f64)),
                ("early_exit_steps".into(), Json::Num(c.eval.early_exit_steps as f64)),
                ("hoisted_preds".into(), Json::Num(c.eval.hoisted_preds as f64)),
                ("chain_joins".into(), Json::Num(c.eval.chain_joins as f64)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("ok".into(), Json::Bool(true)),
        (
            "cache".into(),
            Json::Obj(vec![
                ("hits".into(), Json::Num(cache.hits as f64)),
                ("misses".into(), Json::Num(cache.misses as f64)),
                ("evictions".into(), Json::Num(cache.evictions as f64)),
                ("cross_doc_hits".into(), Json::Num(cache.cross_doc_hits as f64)),
                ("entries".into(), Json::Num(cache.entries as f64)),
            ]),
        ),
        (
            "eval".into(),
            Json::Obj(vec![
                ("batched_steps".into(), Json::Num(eval.batched_steps as f64)),
                ("rewritten_steps".into(), Json::Num(eval.rewritten_steps as f64)),
                ("plan_rewrites".into(), Json::Num(eval.plan_rewrites as f64)),
                ("early_exit_steps".into(), Json::Num(eval.early_exit_steps as f64)),
                ("hoisted_preds".into(), Json::Num(eval.hoisted_preds as f64)),
                ("chain_joins".into(), Json::Num(eval.chain_joins as f64)),
            ]),
        ),
        (
            "server".into(),
            Json::Obj(vec![
                ("workers".into(), Json::Num(shared.config.workers as f64)),
                (
                    "connections_accepted".into(),
                    Json::Num(shared.accepted.load(Ordering::Relaxed) as f64),
                ),
                ("requests".into(), Json::Num(shared.requests.load(Ordering::Relaxed) as f64)),
                (
                    "pipelined_requests".into(),
                    Json::Num(shared.pipelined.load(Ordering::Relaxed) as f64),
                ),
                ("active_connections".into(), Json::Num(sessions.len() as f64)),
                ("sessions".into(), Json::Arr(sessions)),
            ]),
        ),
        ("documents".into(), Json::Num(catalog.len() as f64)),
        ("store".into(), store_section(catalog)),
    ])
}

/// The `/stats` persistence section. Always present (all-zero without a
/// data directory) so clients need no shape detection.
fn store_section(catalog: &Catalog) -> Json {
    let store = catalog.store_stats();
    Json::Obj(vec![
        ("attached".into(), Json::Bool(store.attached)),
        (
            "memory_budget".into(),
            match store.budget {
                Some(b) => Json::Num(b as f64),
                None => Json::Null,
            },
        ),
        ("loads".into(), Json::Num(store.loads as f64)),
        ("evictions".into(), Json::Num(store.evictions as f64)),
        ("cold_start_hits".into(), Json::Num(store.cold_start_hits as f64)),
        ("bytes_on_disk".into(), Json::Num(store.bytes_on_disk as f64)),
        ("resident_docs".into(), Json::Num(store.resident_docs as f64)),
        ("resident_bytes".into(), Json::Num(store.resident_bytes as f64)),
    ])
}
