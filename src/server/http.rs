//! Minimal HTTP/1.1 protocol layer: request-line/header parsing,
//! `Content-Length`-framed bodies (no chunked encoding — the wire format
//! always knows its body size), and keep-alive handling.
//!
//! Parsing is **incremental**: the event loop appends whatever bytes a
//! readiness notification delivered to a per-connection buffer and calls
//! [`try_parse`], which either extracts one complete request off the
//! front or reports that more bytes are needed. A request head may
//! straddle any read boundary — including splitting inside the
//! `\r\n\r\n` terminator itself — because the head-end search resumes
//! from a caller-held `scan` offset instead of assuming the head arrives
//! in one read. The offset also keeps the search linear: a byte-at-a-time
//! client costs O(head) total, not O(head²) rescans.

/// Cap on the request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method as sent (`GET`, `POST`, `PUT`, …).
    pub method: String,
    /// Request target, without any `?query` suffix.
    pub path: String,
    pub body: Vec<u8>,
    /// Client asked to close after this exchange (`Connection: close`, or
    /// HTTP/1.0 without `keep-alive`).
    pub close: bool,
}

impl Request {
    /// The body as UTF-8, or `None` when it isn't valid UTF-8.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// Why [`try_parse`] rejected the buffered bytes. Transport-level
/// conditions (peer closed, timeout, I/O error) are the event loop's
/// business — the parser only ever sees bytes.
#[derive(Debug)]
pub(crate) enum ParseError {
    /// Malformed request — respond 400 and close.
    Bad(String),
    /// Head or declared body over the size cap — respond 413 and close.
    /// Decided from the *declared* `Content-Length`, so an oversized
    /// upload is refused without reading the body to exhaustion.
    TooLarge,
}

/// Try to extract one complete request from the front of `buf`.
///
/// `scan` is the resume offset for the head-end (`\r\n\r\n`) search; the
/// caller owns it per connection, initialized to 0, and must not touch it
/// otherwise. `Ok(None)` means the request is incomplete — append more
/// bytes and call again. On `Ok(Some(_))` the request's bytes have been
/// drained from `buf` (pipelined followers stay buffered) and `scan` is
/// reset for the next head.
pub(crate) fn try_parse(
    buf: &mut Vec<u8>,
    scan: &mut usize,
    max_body: usize,
) -> Result<Option<Request>, ParseError> {
    // Back up three bytes so a terminator that straddles the previous
    // read boundary (e.g. `…\r\n` then `\r\n…`) is still found.
    let from = scan.saturating_sub(3);
    let head_end =
        buf[from.min(buf.len())..].windows(4).position(|w| w == b"\r\n\r\n").map(|p| from + p);
    let Some(head_end) = head_end else {
        if buf.len() > MAX_HEAD {
            return Err(ParseError::TooLarge);
        }
        *scan = buf.len();
        return Ok(None);
    };
    if head_end > MAX_HEAD {
        return Err(ParseError::TooLarge);
    }
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ParseError::Bad("request head is not UTF-8".into()))?;
    let (method, path, close, content_length) = parse_head(head)?;
    if content_length > max_body {
        return Err(ParseError::TooLarge);
    }
    let total = head_end + 4 + content_length;
    if buf.len() < total {
        // Head parsed, body still arriving: park the scan offset at the
        // head end so the next call re-finds the terminator instantly.
        *scan = head_end;
        return Ok(None);
    }
    let body = buf[head_end + 4..total].to_vec();
    buf.drain(..total);
    *scan = 0;
    Ok(Some(Request { method, path, body, close }))
}

/// Parse the head into (method, path, close, content_length).
fn parse_head(head: &str) -> Result<(String, String, bool, usize), ParseError> {
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ParseError::Bad(format!("malformed request line `{request_line}`")));
    };
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(ParseError::Bad(format!("unsupported protocol `{version}`")));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut close = version == "HTTP/1.0";
    let mut content_length: Option<usize> = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Bad(format!("malformed header line `{line}`")));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let parsed: usize = value
                .parse()
                .map_err(|_| ParseError::Bad(format!("bad content-length `{value}`")))?;
            // Conflicting duplicates are a request-smuggling vector
            // (different parties would frame the body differently):
            // reject, like the chunked-encoding refusal below.
            if content_length.is_some_and(|prev| prev != parsed) {
                return Err(ParseError::Bad("conflicting content-length headers".into()));
            }
            content_length = Some(parsed);
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                close = true;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                close = false;
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            // The wire format is Content-Length framed on purpose.
            return Err(ParseError::Bad("chunked transfer encoding is not supported".into()));
        }
    }
    Ok((method.to_string(), path, close, content_length.unwrap_or(0)))
}

/// Standard reason phrases for the statuses the wire format uses.
pub(crate) fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Format a complete JSON response as one contiguous byte run;
/// `keep_alive` picks the `Connection` header (the caller already folded
/// the client's wish and shutdown state into it). The event loop appends
/// this to the connection's ordered output buffer, so a response is never
/// interleaved with another even when requests were pipelined.
pub(crate) fn format_response(status: u16, body: &str, keep_alive: bool) -> Vec<u8> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\
         Connection: {}\r\n\r\n",
        status_text(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    let mut out = Vec::with_capacity(head.len() + body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(body.as_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAX_BODY: usize = 1024;

    fn parse_all(bytes: &[u8]) -> Vec<Request> {
        let mut buf = bytes.to_vec();
        let mut scan = 0;
        let mut out = Vec::new();
        while let Some(req) = try_parse(&mut buf, &mut scan, MAX_BODY).unwrap() {
            out.push(req);
        }
        out
    }

    #[test]
    fn head_parser_extracts_framing() {
        let (method, path, close, len) = parse_head(
            "POST /query?trace=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 12\r\nConnection: close",
        )
        .unwrap();
        assert_eq!(method, "POST");
        assert_eq!(path, "/query", "query string is stripped");
        assert!(close);
        assert_eq!(len, 12);

        let (_, _, close, len) = parse_head("GET /stats HTTP/1.1\r\nHost: x").unwrap();
        assert!(!close, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(len, 0);

        let (_, _, close, _) = parse_head("GET / HTTP/1.0\r\nHost: x").unwrap();
        assert!(close, "HTTP/1.0 defaults to close");

        assert!(matches!(parse_head("BROKEN"), Err(ParseError::Bad(_))));
        assert!(matches!(parse_head("GET / HTTP/2"), Err(ParseError::Bad(_))));
        assert!(matches!(
            parse_head("POST / HTTP/1.1\r\nTransfer-Encoding: chunked"),
            Err(ParseError::Bad(_))
        ));
        assert!(matches!(
            parse_head("POST / HTTP/1.1\r\nContent-Length: nope"),
            Err(ParseError::Bad(_))
        ));
        // Conflicting duplicate Content-Length headers are rejected
        // (request-smuggling vector); identical repeats are tolerated.
        assert!(matches!(
            parse_head("POST / HTTP/1.1\r\nContent-Length: 10\r\nContent-Length: 0"),
            Err(ParseError::Bad(_))
        ));
        let (_, _, _, len) =
            parse_head("POST / HTTP/1.1\r\nContent-Length: 7\r\nContent-Length: 7").unwrap();
        assert_eq!(len, 7);
    }

    /// The regression the incremental parser owns explicitly: a request
    /// split at *every* byte boundary — including inside the `\r\n\r\n`
    /// head terminator — parses identically to the one-shot case.
    #[test]
    fn a_request_split_at_every_boundary_parses_identically() {
        let raw = b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        for split in 1..raw.len() {
            let mut buf = Vec::new();
            let mut scan = 0;
            buf.extend_from_slice(&raw[..split]);
            assert!(
                try_parse(&mut buf, &mut scan, MAX_BODY).unwrap().is_none(),
                "split {split}: prefix alone is incomplete"
            );
            buf.extend_from_slice(&raw[split..]);
            let req = try_parse(&mut buf, &mut scan, MAX_BODY)
                .unwrap()
                .unwrap_or_else(|| panic!("split {split}: whole request parses"));
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/query");
            assert_eq!(req.body, b"hello");
            assert!(buf.is_empty(), "split {split}: nothing left over");
            assert_eq!(scan, 0, "split {split}: scan reset for the next head");
        }
    }

    /// Byte-at-a-time arrival: every prefix is "incomplete", the full
    /// request parses, and the scan offset never re-scans the whole
    /// buffer (it tracks the frontier).
    #[test]
    fn byte_at_a_time_arrival_parses_and_tracks_the_frontier() {
        let raw = b"GET /stats HTTP/1.1\r\nHost: x\r\n\r\n";
        let mut buf = Vec::new();
        let mut scan = 0;
        for (i, b) in raw.iter().enumerate() {
            buf.push(*b);
            let parsed = try_parse(&mut buf, &mut scan, MAX_BODY).unwrap();
            if i < raw.len() - 1 {
                assert!(parsed.is_none(), "byte {i}");
                assert_eq!(scan, buf.len(), "scan tracks the search frontier");
            } else {
                assert_eq!(parsed.unwrap().path, "/stats");
            }
        }
    }

    #[test]
    fn pipelined_requests_extract_in_order_leaving_the_tail() {
        let raw = b"POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi\
                    GET /b HTTP/1.1\r\n\r\n\
                    POST /c HTTP/1.1\r\nContent-Length: 1\r\n\r\n";
        let mut buf = raw.to_vec();
        let mut scan = 0;
        let a = try_parse(&mut buf, &mut scan, MAX_BODY).unwrap().unwrap();
        assert_eq!((a.path.as_str(), a.body.as_slice()), ("/a", b"hi".as_slice()));
        let b = try_parse(&mut buf, &mut scan, MAX_BODY).unwrap().unwrap();
        assert_eq!(b.path, "/b");
        // `/c` declared one body byte that never arrived.
        assert!(try_parse(&mut buf, &mut scan, MAX_BODY).unwrap().is_none());
        buf.push(b'x');
        let c = try_parse(&mut buf, &mut scan, MAX_BODY).unwrap().unwrap();
        assert_eq!((c.path.as_str(), c.body.as_slice()), ("/c", b"x".as_slice()));

        // And the one-shot helper agrees on a fully buffered burst.
        let burst = b"GET /1 HTTP/1.1\r\n\r\nGET /2 HTTP/1.1\r\n\r\n";
        let reqs = parse_all(burst);
        assert_eq!(reqs.iter().map(|r| r.path.as_str()).collect::<Vec<_>>(), ["/1", "/2"]);
    }

    /// An oversized declared body is rejected from the head alone — the
    /// body bytes are never required (the server must not read a 10 MB
    /// upload just to refuse it).
    #[test]
    fn oversized_declared_body_is_rejected_at_the_head() {
        let mut buf = b"POST /query HTTP/1.1\r\nContent-Length: 99999\r\n\r\n".to_vec();
        let mut scan = 0;
        assert!(matches!(try_parse(&mut buf, &mut scan, MAX_BODY), Err(ParseError::TooLarge)));
    }

    #[test]
    fn a_runaway_head_is_rejected_at_the_cap() {
        let mut buf = vec![b'A'; MAX_HEAD + 1];
        let mut scan = 0;
        assert!(matches!(try_parse(&mut buf, &mut scan, MAX_BODY), Err(ParseError::TooLarge)));
    }

    #[test]
    fn responses_format_as_one_contiguous_run() {
        let bytes = format_response(200, "{\"ok\":true}", true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
        let closed = String::from_utf8(format_response(503, "{}", false)).unwrap();
        assert!(closed.contains("Connection: close\r\n"));
    }
}
