//! Minimal HTTP/1.1 protocol layer: request-line/header parsing,
//! `Content-Length`-framed bodies (no chunked encoding — the wire format
//! always knows its body size), and keep-alive handling.
//!
//! Reading is poll-based: the caller sets a short read timeout on the
//! socket and passes a `stop` predicate; an **idle** connection (no byte
//! of the next request buffered) notices a server shutdown within one
//! poll interval, while a request that has started arriving gets the full
//! request timeout to finish — a response in progress is never abandoned.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Cap on the request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method as sent (`GET`, `POST`, `PUT`, …).
    pub method: String,
    /// Request target, without any `?query` suffix.
    pub path: String,
    pub body: Vec<u8>,
    /// Client asked to close after this exchange (`Connection: close`, or
    /// HTTP/1.0 without `keep-alive`).
    pub close: bool,
}

impl Request {
    /// The body as UTF-8, or `None` when it isn't valid UTF-8.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// Why [`read_request`] returned without a request.
#[derive(Debug)]
pub(crate) enum ReadError {
    /// Clean end: peer closed between requests, or the server began
    /// shutting down while the connection was idle. Not an error.
    Closed,
    /// Malformed request — respond 400 and close.
    Bad(String),
    /// Head or declared body over the size cap — respond 413 and close.
    TooLarge,
    /// A request started arriving but didn't finish within the timeout —
    /// respond 408 and close.
    Timeout,
    /// Transport failure mid-read; nothing can be sent back.
    Io(#[allow(dead_code)] io::Error),
}

/// Read one request from `stream`, carrying leftover bytes across calls in
/// `buf` (pipelined bytes are preserved for the next call). The stream
/// must have a read timeout set (the poll interval); `stop` is consulted
/// only while the connection is idle.
pub(crate) fn read_request(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    stop: &dyn Fn() -> bool,
    max_body: usize,
    request_timeout: Duration,
) -> Result<Request, ReadError> {
    let mut chunk = [0u8; 8 * 1024];
    let mut started: Option<Instant> = if buf.is_empty() { None } else { Some(Instant::now()) };
    loop {
        if let Some(head_end) = find_head_end(buf) {
            let head = std::str::from_utf8(&buf[..head_end])
                .map_err(|_| ReadError::Bad("request head is not UTF-8".into()))?;
            let (method, path, close, content_length) = parse_head(head)?;
            if content_length > max_body {
                return Err(ReadError::TooLarge);
            }
            let total = head_end + 4 + content_length;
            if buf.len() >= total {
                let body = buf[head_end + 4..total].to_vec();
                buf.drain(..total);
                return Ok(Request { method, path, body, close });
            }
        } else if buf.len() > MAX_HEAD {
            return Err(ReadError::TooLarge);
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    Err(ReadError::Closed)
                } else {
                    Err(ReadError::Bad("connection closed mid-request".into()))
                };
            }
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                let t0 = *started.get_or_insert_with(Instant::now);
                // Enforce the deadline on this path too: a client trickling
                // a byte per poll interval must not pin a worker (and block
                // shutdown's join) past the request timeout.
                if t0.elapsed() > request_timeout {
                    return Err(ReadError::Timeout);
                }
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                match started {
                    None if stop() => return Err(ReadError::Closed),
                    None => continue,
                    Some(t0) if t0.elapsed() > request_timeout => return Err(ReadError::Timeout),
                    Some(_) => continue,
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parse the head into (method, path, close, content_length).
fn parse_head(head: &str) -> Result<(String, String, bool, usize), ReadError> {
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ReadError::Bad(format!("malformed request line `{request_line}`")));
    };
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(ReadError::Bad(format!("unsupported protocol `{version}`")));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut close = version == "HTTP/1.0";
    let mut content_length: Option<usize> = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Bad(format!("malformed header line `{line}`")));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let parsed: usize = value
                .parse()
                .map_err(|_| ReadError::Bad(format!("bad content-length `{value}`")))?;
            // Conflicting duplicates are a request-smuggling vector
            // (different parties would frame the body differently):
            // reject, like the chunked-encoding refusal below.
            if content_length.is_some_and(|prev| prev != parsed) {
                return Err(ReadError::Bad("conflicting content-length headers".into()));
            }
            content_length = Some(parsed);
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                close = true;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                close = false;
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            // The wire format is Content-Length framed on purpose.
            return Err(ReadError::Bad("chunked transfer encoding is not supported".into()));
        }
    }
    Ok((method.to_string(), path, close, content_length.unwrap_or(0)))
}

/// Standard reason phrases for the statuses the wire format uses.
pub(crate) fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete JSON response; `keep_alive` picks the `Connection`
/// header (the caller already folded the client's wish and shutdown state
/// into it).
pub(crate) fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\
         Connection: {}\r\n\r\n",
        status_text(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    // One buffered write keeps the response a single segment in the common
    // case — a response is never visible half-written to the peer's parser.
    let mut out = Vec::with_capacity(head.len() + body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(body.as_bytes());
    stream.write_all(&out)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_parser_extracts_framing() {
        let (method, path, close, len) = parse_head(
            "POST /query?trace=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 12\r\nConnection: close",
        )
        .unwrap();
        assert_eq!(method, "POST");
        assert_eq!(path, "/query", "query string is stripped");
        assert!(close);
        assert_eq!(len, 12);

        let (_, _, close, len) = parse_head("GET /stats HTTP/1.1\r\nHost: x").unwrap();
        assert!(!close, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(len, 0);

        let (_, _, close, _) = parse_head("GET / HTTP/1.0\r\nHost: x").unwrap();
        assert!(close, "HTTP/1.0 defaults to close");

        assert!(matches!(parse_head("BROKEN"), Err(ReadError::Bad(_))));
        assert!(matches!(parse_head("GET / HTTP/2"), Err(ReadError::Bad(_))));
        assert!(matches!(
            parse_head("POST / HTTP/1.1\r\nTransfer-Encoding: chunked"),
            Err(ReadError::Bad(_))
        ));
        assert!(matches!(
            parse_head("POST / HTTP/1.1\r\nContent-Length: nope"),
            Err(ReadError::Bad(_))
        ));
        // Conflicting duplicate Content-Length headers are rejected
        // (request-smuggling vector); identical repeats are tolerated.
        assert!(matches!(
            parse_head("POST / HTTP/1.1\r\nContent-Length: 10\r\nContent-Length: 0"),
            Err(ReadError::Bad(_))
        ));
        let (_, _, _, len) =
            parse_head("POST / HTTP/1.1\r\nContent-Length: 7\r\nContent-Length: 7").unwrap();
        assert_eq!(len, 7);
    }
}
