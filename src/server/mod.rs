//! # `mhxd` — the catalog on the wire
//!
//! A std-only **evented** HTTP/1.1 front end for [`Catalog`]: one epoll
//! readiness loop (raw `epoll(7)` on Linux, see `event.rs`) owns every
//! client socket in nonblocking mode and parses requests incrementally;
//! complete requests are handed to a fixed pool of dispatch workers.
//! Thread count is `workers + 1` regardless of connection count, so
//! thousands of idle keep-alive clients cost a connection-table entry
//! each, not a thread each. Per-connection state (pinned document,
//! per-connection [`EvalOptions`] knobs, prepared-statement handles)
//! lives in the loop's connection table and travels into a worker with
//! each request.
//!
//! ```text
//!      TcpListener ──► event loop (1 thread: accept + epoll readiness)
//!                         │ connection table: fd token → buffers +
//!                         │   ConnState (doc pin, prepared, options)
//!                         │ complete requests → mpsc job queue
//!            ┌────────────┼────────────┐
//!        worker 0     worker 1  …  worker N-1   (ServerConfig::workers)
//!            │ route → respond (bytes back via completion queue)
//!        Session ──► Catalog (&self queries, shared plan cache)
//! ```
//!
//! Requests pipeline: the loop parses ahead while earlier requests run,
//! execution stays serial per connection, and responses flush strictly
//! in arrival order.
//!
//! No tokio, no hyper: the build is offline (see the `vendor/` shim
//! convention), and `std::net` + raw-libc epoll + a thread pool serve the
//! engine's `&self`-query design directly — the catalog was made
//! `Send + Sync` for exactly this.
//!
//! **Graceful shutdown.** [`Server::shutdown`] flips the drain flag,
//! [`Catalog::begin_shutdown`]s the engine (in-flight evaluations finish,
//! new ones get 503), and wakes the event loop, which stops admitting
//! connections, closes idle ones within one poll interval, and completes
//! every response in flight before exiting — no request is dropped
//! mid-response.
//!
//! The [`client`] module is the matching blocking client (used by the
//! integration tests, `mhxq --connect`, and the `serve` bench); [`wire`]
//! documents the JSON wire format and the `EngineError` → status mapping.
//! Scaling past one node is the [`router`] module (the `mhxr` binary): a
//! [`pool::BackendPool`] consistent-hashes document ids across several
//! `mhxd` backends and the [`Router`] speaks this same wire protocol in
//! front of them, with replication and drain-aware failover.

mod accept;
pub mod client;
mod event;
mod handler;
mod http;
pub mod pool;
pub mod router;
pub mod wire;

pub use http::Request;
pub use pool::{BackendHealth, BackendPool};
pub use router::{Router, RouterConfig};
pub use wire::{error_kind, parse_lang, status_for, WireOutcome};

use crate::engine::{Catalog, EvalStats};
use event::{EventConfig, EventLoop, Service};
use mhx_json::Json;
use mhx_xquery::EvalOptions;
use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Tuning knobs for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Dispatch worker threads — the concurrent request execution bound.
    /// Connections are evented, so idle keep-alive clients cost no
    /// threads regardless of this setting.
    pub workers: usize,
    /// The event loop's `epoll_wait` tick: the upper bound on how stale
    /// the drain flag and timeout sweep can get with no socket activity.
    pub poll_interval: Duration,
    /// How long a started request may take to arrive completely.
    pub request_timeout: Duration,
    /// Maximum request body size in bytes.
    pub max_body: usize,
    /// Close keep-alive connections idle (no bytes, nothing queued or in
    /// flight) for longer than this. `None` (the default) keeps idle
    /// connections open until the peer hangs up or the server drains.
    pub max_idle: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 8,
            poll_interval: Duration::from_millis(25),
            request_timeout: Duration::from_secs(10),
            max_body: 16 * 1024 * 1024,
            max_idle: None,
        }
    }
}

/// Aggregate server counters (see also the `/stats` endpoint).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    pub connections_accepted: u64,
    pub requests: u64,
    /// Requests that arrived while an earlier request on the same
    /// connection was still queued or executing (HTTP/1.1 pipelining).
    pub pipelined_requests: u64,
    pub active_connections: usize,
}

/// Per-connection bookkeeping published to `/stats`: the request count,
/// the pinned document, and the session's evaluation counters.
pub(crate) struct ConnStats {
    pub(crate) id: u64,
    pub(crate) peer: String,
    pub(crate) requests: AtomicU64,
    doc: Mutex<String>,
    batched_steps: AtomicU64,
    rewritten_steps: AtomicU64,
    plan_rewrites: AtomicU64,
    early_exit_steps: AtomicU64,
    hoisted_preds: AtomicU64,
    chain_joins: AtomicU64,
}

impl ConnStats {
    pub(crate) fn set_doc(&self, doc: &str) {
        *self.doc.lock().unwrap_or_else(PoisonError::into_inner) = doc.to_string();
    }

    /// Publish the connection's current cumulative eval counters.
    pub(crate) fn record_eval(&self, stats: EvalStats) {
        self.batched_steps.store(stats.batched_steps, Ordering::Relaxed);
        self.rewritten_steps.store(stats.rewritten_steps, Ordering::Relaxed);
        self.plan_rewrites.store(stats.plan_rewrites, Ordering::Relaxed);
        self.early_exit_steps.store(stats.early_exit_steps, Ordering::Relaxed);
        self.hoisted_preds.store(stats.hoisted_preds, Ordering::Relaxed);
        self.chain_joins.store(stats.chain_joins, Ordering::Relaxed);
    }
}

/// A `/stats`-shaped snapshot of one connection.
pub(crate) struct ConnSnapshot {
    pub(crate) id: u64,
    pub(crate) peer: String,
    pub(crate) doc: String,
    pub(crate) requests: u64,
    pub(crate) eval: EvalStats,
}

/// State shared by the event loop, the workers, and the [`Server`] handle.
pub(crate) struct Shared {
    pub(crate) catalog: Arc<Catalog>,
    pub(crate) config: ServerConfig,
    shutdown: AtomicBool,
    pub(crate) shutdown_requested: AtomicBool,
    pub(crate) accepted: AtomicU64,
    pub(crate) requests: AtomicU64,
    pub(crate) pipelined: AtomicU64,
    next_conn: AtomicU64,
    conns: Mutex<BTreeMap<u64, Arc<ConnStats>>>,
}

impl Shared {
    pub(crate) fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    pub(crate) fn register_conn(&self, stream: &TcpStream) -> Arc<ConnStats> {
        let id = self.next_conn.fetch_add(1, Ordering::Relaxed) + 1;
        let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "?".into());
        let conn = Arc::new(ConnStats {
            id,
            peer,
            requests: AtomicU64::new(0),
            doc: Mutex::new(String::new()),
            batched_steps: AtomicU64::new(0),
            rewritten_steps: AtomicU64::new(0),
            plan_rewrites: AtomicU64::new(0),
            early_exit_steps: AtomicU64::new(0),
            hoisted_preds: AtomicU64::new(0),
            chain_joins: AtomicU64::new(0),
        });
        self.conns.lock().unwrap_or_else(PoisonError::into_inner).insert(id, Arc::clone(&conn));
        conn
    }

    pub(crate) fn unregister_conn(&self, id: u64) {
        self.conns.lock().unwrap_or_else(PoisonError::into_inner).remove(&id);
    }

    pub(crate) fn conn_snapshot(&self) -> Vec<ConnSnapshot> {
        self.conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .map(|c| ConnSnapshot {
                id: c.id,
                peer: c.peer.clone(),
                doc: c.doc.lock().unwrap_or_else(PoisonError::into_inner).clone(),
                requests: c.requests.load(Ordering::Relaxed),
                eval: EvalStats {
                    batched_steps: c.batched_steps.load(Ordering::Relaxed),
                    rewritten_steps: c.rewritten_steps.load(Ordering::Relaxed),
                    plan_rewrites: c.plan_rewrites.load(Ordering::Relaxed),
                    early_exit_steps: c.early_exit_steps.load(Ordering::Relaxed),
                    hoisted_preds: c.hoisted_preds.load(Ordering::Relaxed),
                    chain_joins: c.chain_joins.load(Ordering::Relaxed),
                },
            })
            .collect()
    }
}

/// The daemon's [`Service`]: glues the event loop to the engine — counts
/// connections and requests, owns the drain flag, and routes each
/// complete request through [`handler`].
struct ServerService {
    shared: Arc<Shared>,
}

/// One connection's entry payload: its `/stats` row plus the handler
/// state (document pin, prepared handles, options).
struct ServerConn {
    stats: Arc<ConnStats>,
    state: handler::ConnState,
}

impl Service for ServerService {
    type Conn = ServerConn;

    fn connect(&self, stream: &TcpStream) -> ServerConn {
        self.shared.accepted.fetch_add(1, Ordering::Relaxed);
        let stats = self.shared.register_conn(stream);
        let state = handler::ConnState::new(self.shared.catalog.options().clone());
        ServerConn { stats, state }
    }

    fn handle(&self, conn: &mut ServerConn, req: &http::Request) -> (u16, Json) {
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        conn.stats.requests.fetch_add(1, Ordering::Relaxed);
        let out =
            handler::route(&self.shared, &self.shared.catalog, &conn.stats, &mut conn.state, req);
        conn.stats.record_eval(conn.state.eval_stats());
        out
    }

    fn disconnect(&self, conn: ServerConn) {
        self.shared.unregister_conn(conn.stats.id);
    }

    fn draining(&self) -> bool {
        self.shared.draining()
    }

    fn note_pipelined(&self) {
        self.shared.pipelined.fetch_add(1, Ordering::Relaxed);
    }
}

/// The running daemon: a bound listener, its event loop, and the worker
/// pool. Dropping without [`Server::shutdown`] detaches the threads
/// (they keep serving until the process exits) — daemons should always
/// shut down explicitly.
///
/// ```
/// use multihier_xquery::prelude::*;
/// use multihier_xquery::server::{client::Client, Server, ServerConfig};
/// use std::sync::Arc;
///
/// let catalog = Arc::new(Catalog::new());
/// catalog.insert(
///     "ms",
///     GoddagBuilder::new().hierarchy("w", "<r><w>a</w><w>b</w></r>").build().unwrap(),
/// );
/// let server = Server::bind(catalog, "127.0.0.1:0", ServerConfig::default()).unwrap();
///
/// let mut client = Client::connect(&server.addr().to_string()).unwrap();
/// let out = client.xpath("ms", "count(/descendant::w)").unwrap();
/// assert_eq!(out.serialized, "2");
///
/// assert!(server.shutdown());
/// ```
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    evloop: EventLoop,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start the
    /// event loop plus `config.workers` worker threads.
    pub fn bind(catalog: Arc<Catalog>, addr: &str, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            catalog,
            config: ServerConfig { workers, ..config },
            shutdown: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            pipelined: AtomicU64::new(0),
            next_conn: AtomicU64::new(0),
            conns: Mutex::new(BTreeMap::new()),
        });
        let evloop = EventLoop::start(
            listener,
            "mhxd",
            workers,
            EventConfig {
                poll_interval: shared.config.poll_interval,
                request_timeout: shared.config.request_timeout,
                max_body: shared.config.max_body,
                max_idle: shared.config.max_idle,
            },
            Arc::new(ServerService { shared: Arc::clone(&shared) }),
        )?;
        Ok(Server { addr: local, shared, evloop })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.shared.catalog
    }

    /// Catalog-wide default options the server was started with.
    pub fn options(&self) -> EvalOptions {
        self.shared.catalog.options().clone()
    }

    pub fn stats(&self) -> ServerStats {
        ServerStats {
            connections_accepted: self.shared.accepted.load(Ordering::Relaxed),
            requests: self.shared.requests.load(Ordering::Relaxed),
            pipelined_requests: self.shared.pipelined.load(Ordering::Relaxed),
            active_connections: self
                .shared
                .conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len(),
        }
    }

    /// True once a client posted `/shutdown` (or [`Server::request_shutdown`]
    /// ran). The owner of the `Server` is expected to poll this and call
    /// [`Server::shutdown`] — a worker cannot join its own pool.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Ask the owner loop to shut down (same effect as `POST /shutdown`).
    pub fn request_shutdown(&self) {
        self.shared.shutdown_requested.store(true, Ordering::SeqCst);
    }

    /// Graceful shutdown: stop accepting, drain the engine (in-flight
    /// queries finish, every response in progress is completed), join all
    /// threads. Returns true when the engine reached zero in-flight
    /// queries before the internal timeout.
    pub fn shutdown(mut self) -> bool {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.catalog.begin_shutdown();
        // The event loop is woken immediately, finishes every in-flight
        // response, then exits; its workers join behind it.
        self.evloop.shutdown();
        self.shared.catalog.drain(Duration::from_secs(30))
    }
}
