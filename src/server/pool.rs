//! The shard-routing backend pool: consistent hashing of document ids
//! across `mhxd` backends, replica placement, and per-backend
//! health/drain state.
//!
//! [`BackendPool`] is transport-free — it decides *where* a document
//! lives and in what order replicas should be tried; the
//! [`router`](super::router) module owns the actual connections.
//!
//! Placement is a classic consistent-hash ring: every backend address
//! contributes `VNODES` (64) points (FNV-1a 64 of `addr\u{1f}vnode`), a
//! document id hashes to a point, and its replica set is the first
//! `replicas` **distinct** backends walking the ring clockwise from
//! there. Two routers configured with the same `--shard` list therefore
//! agree on every placement with no coordination — documents are
//! immutable after upload, so sharding + replication is pure routing.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Virtual nodes per backend on the hash ring: enough points that a
/// handful of backends split a corpus roughly evenly, few enough that
/// building and walking the ring stays trivial.
const VNODES: usize = 64;

/// How long a backend stays demoted (tried last, not first) after a
/// failure before the router probes it again in preferred order.
const RETRY_COOLDOWN: Duration = Duration::from_millis(500);

/// 64-bit FNV-1a with a splitmix64 finalizer. Bare FNV-1a mixes the last
/// bytes of short, similar strings (`addr\u{1f}0` … `addr\u{1f}63`) only
/// into the low bits, so all of one backend's vnodes would sort into one
/// contiguous ring arc — the finalizer avalanches them across the whole
/// key space.
fn ring_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Health/drain state for one backend, updated by the router as requests
/// succeed and fail.
struct BackendState {
    addr: String,
    /// False after a transport failure or drain signal, until a request
    /// succeeds again.
    healthy: AtomicBool,
    /// The backend's last failure was its typed `503`/`shutting_down`
    /// drain signal (as opposed to a connection failure).
    draining: AtomicBool,
    failures: AtomicU64,
    successes: AtomicU64,
    last_failure: Mutex<Option<Instant>>,
}

/// A `/stats`-shaped snapshot of one backend's health.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendHealth {
    pub addr: String,
    pub healthy: bool,
    pub draining: bool,
    pub failures: u64,
    pub successes: u64,
}

/// Consistent-hash placement plus health bookkeeping for a fixed set of
/// `mhxd` backends. Shared (via `Arc`) by every router connection.
pub struct BackendPool {
    backends: Vec<BackendState>,
    /// `(point, backend index)` sorted by point — the hash ring.
    ring: Vec<(u64, usize)>,
    replicas: usize,
    /// Round-robin cursor spreading reads across a replica set.
    cursor: AtomicUsize,
    /// Placements recorded by uploads through the router. Usually equal
    /// to the ring's answer; kept so reads follow what actually succeeded
    /// when an upload had to walk past a dead backend.
    placements: Mutex<BTreeMap<String, Vec<usize>>>,
}

impl BackendPool {
    /// Build the ring over `addrs`; `replicas` is clamped to
    /// `1..=addrs.len()`. Panics on an empty backend list — a router
    /// with nothing behind it is a configuration error.
    pub fn new(addrs: Vec<String>, replicas: usize) -> BackendPool {
        assert!(!addrs.is_empty(), "BackendPool needs at least one backend address");
        let replicas = replicas.clamp(1, addrs.len());
        let mut ring = Vec::with_capacity(addrs.len() * VNODES);
        for (i, addr) in addrs.iter().enumerate() {
            for v in 0..VNODES {
                // \u{1f} (unit separator) cannot occur in a host:port, so
                // distinct (addr, vnode) pairs never collide textually.
                ring.push((ring_hash(format!("{addr}\u{1f}{v}").as_bytes()), i));
            }
        }
        ring.sort_unstable();
        let backends = addrs
            .into_iter()
            .map(|addr| BackendState {
                addr,
                healthy: AtomicBool::new(true),
                draining: AtomicBool::new(false),
                failures: AtomicU64::new(0),
                successes: AtomicU64::new(0),
                last_failure: Mutex::new(None),
            })
            .collect();
        BackendPool {
            backends,
            ring,
            replicas,
            cursor: AtomicUsize::new(0),
            placements: Mutex::new(BTreeMap::new()),
        }
    }

    pub fn len(&self) -> usize {
        self.backends.len()
    }

    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// Configured replication factor (post-clamp).
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    pub fn addr(&self, backend: usize) -> &str {
        &self.backends[backend].addr
    }

    /// Walk the ring clockwise from `doc`'s point, yielding each distinct
    /// backend once.
    fn walk(&self, doc: &str) -> impl Iterator<Item = usize> + '_ {
        let point = ring_hash(doc.as_bytes());
        let start = self.ring.partition_point(|&(p, _)| p < point);
        let mut seen = vec![false; self.backends.len()];
        (0..self.ring.len()).filter_map(move |k| {
            let (_, b) = self.ring[(start + k) % self.ring.len()];
            if seen[b] {
                None
            } else {
                seen[b] = true;
                Some(b)
            }
        })
    }

    /// The `replicas` distinct backends that should hold `doc` — pure
    /// placement, no health or rotation applied. Deterministic across
    /// router restarts for a fixed backend list.
    pub fn replica_set(&self, doc: &str) -> Vec<usize> {
        self.walk(doc).take(self.replicas).collect()
    }

    /// Every backend in ring order from `doc`'s point: the replica set
    /// first, then the fallbacks an upload walks onto when a preferred
    /// backend is down.
    pub fn ring_order(&self, doc: &str) -> Vec<usize> {
        self.walk(doc).collect()
    }

    /// The order to try backends for a *read* of `doc`: its replica set
    /// (recorded upload placement when one exists, ring placement
    /// otherwise), rotated round-robin so repeated reads of a hot
    /// document spread across replicas, with known-bad backends demoted
    /// to the end — still tried (a request is what discovers recovery),
    /// but only after the healthy replicas.
    pub fn read_order(&self, doc: &str) -> Vec<usize> {
        let set = self.placement(doc).unwrap_or_else(|| self.replica_set(doc));
        let rot = self.cursor.fetch_add(1, Ordering::Relaxed) % set.len().max(1);
        let mut order: Vec<usize> = set[rot..].iter().chain(&set[..rot]).copied().collect();
        // Stable sort: rotation order is preserved within each group.
        order.sort_by_key(|&i| !self.usable(i));
        order
    }

    /// The order to try backends for a request with no document affinity
    /// (`/prepare` validation): round-robin over the whole pool, healthy
    /// backends first.
    pub fn any_order(&self) -> Vec<usize> {
        let n = self.backends.len();
        let rot = self.cursor.fetch_add(1, Ordering::Relaxed) % n;
        let mut order: Vec<usize> = (0..n).map(|k| (rot + k) % n).collect();
        order.sort_by_key(|&i| !self.usable(i));
        order
    }

    /// Healthy, or failed long enough ago that it is worth probing again.
    fn usable(&self, backend: usize) -> bool {
        let b = &self.backends[backend];
        if b.healthy.load(Ordering::Relaxed) {
            return true;
        }
        let last = b.last_failure.lock().unwrap_or_else(PoisonError::into_inner);
        last.is_none_or(|t| t.elapsed() >= RETRY_COOLDOWN)
    }

    fn fail(&self, backend: usize, draining: bool) {
        let b = &self.backends[backend];
        b.healthy.store(false, Ordering::Relaxed);
        b.draining.store(draining, Ordering::Relaxed);
        b.failures.fetch_add(1, Ordering::Relaxed);
        *b.last_failure.lock().unwrap_or_else(PoisonError::into_inner) = Some(Instant::now());
    }

    /// Record a transport-level failure (connect refused, mid-response
    /// close): the backend is demoted until a request succeeds.
    pub fn mark_down(&self, backend: usize) {
        self.fail(backend, false);
    }

    /// Record the backend's typed drain signal: demoted like a failure,
    /// but `/stats` reports *why*.
    pub fn mark_draining(&self, backend: usize) {
        self.fail(backend, true);
    }

    /// Record a completed HTTP exchange (any status — a 4xx is still a
    /// live backend).
    pub fn mark_up(&self, backend: usize) {
        let b = &self.backends[backend];
        b.healthy.store(true, Ordering::Relaxed);
        b.draining.store(false, Ordering::Relaxed);
        b.successes.fetch_add(1, Ordering::Relaxed);
    }

    /// Remember where an upload actually landed (may differ from the ring
    /// when dead backends were skipped).
    pub fn record_placement(&self, doc: &str, backends: Vec<usize>) {
        self.placements
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(doc.to_string(), backends);
    }

    /// The recorded upload placement for `doc`, if this router saw the
    /// upload.
    pub fn placement(&self, doc: &str) -> Option<Vec<usize>> {
        self.placements.lock().unwrap_or_else(PoisonError::into_inner).get(doc).cloned()
    }

    pub fn health_snapshot(&self) -> Vec<BackendHealth> {
        self.backends
            .iter()
            .map(|b| BackendHealth {
                addr: b.addr.clone(),
                healthy: b.healthy.load(Ordering::Relaxed),
                draining: b.draining.load(Ordering::Relaxed),
                failures: b.failures.load(Ordering::Relaxed),
                successes: b.successes.load(Ordering::Relaxed),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool3(replicas: usize) -> BackendPool {
        BackendPool::new(
            vec!["10.0.0.1:7077".into(), "10.0.0.2:7077".into(), "10.0.0.3:7077".into()],
            replicas,
        )
    }

    #[test]
    fn placement_is_deterministic_across_pool_instances() {
        let a = pool3(2);
        let b = pool3(2);
        for i in 0..50 {
            let doc = format!("doc-{i}");
            assert_eq!(a.replica_set(&doc), b.replica_set(&doc), "{doc}");
        }
    }

    #[test]
    fn replica_sets_are_distinct_backends_of_the_requested_size() {
        let pool = pool3(2);
        for i in 0..50 {
            let set = pool.replica_set(&format!("doc-{i}"));
            assert_eq!(set.len(), 2);
            assert_ne!(set[0], set[1]);
        }
        // Ring order covers every backend exactly once.
        let mut all = pool.ring_order("doc-0");
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2]);
        // Replication factor is clamped to the pool size.
        let clamped = pool3(9);
        assert_eq!(clamped.replicas(), 3);
        let clamped = pool3(0);
        assert_eq!(clamped.replicas(), 1);
    }

    #[test]
    fn the_ring_spreads_documents_over_every_backend() {
        let pool = pool3(1);
        let mut counts = [0usize; 3];
        for i in 0..120 {
            counts[pool.replica_set(&format!("doc-{i}"))[0]] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 10, "backend {i} got only {c}/120 documents: skewed ring {counts:?}");
        }
    }

    #[test]
    fn read_order_round_robins_over_the_replica_set() {
        let pool = pool3(2);
        let set = pool.replica_set("hot");
        let firsts: Vec<usize> = (0..4).map(|_| pool.read_order("hot")[0]).collect();
        // Both replicas take the lead position as the cursor rotates.
        assert!(set.iter().all(|b| firsts.contains(b)), "firsts {firsts:?} vs set {set:?}");
    }

    #[test]
    fn failed_backends_are_demoted_until_marked_up() {
        let pool = pool3(2);
        let set = pool.replica_set("doc");
        pool.mark_down(set[0]);
        for _ in 0..4 {
            let order = pool.read_order("doc");
            assert_eq!(order.last(), Some(&set[0]), "down backend must be tried last");
            assert_eq!(order.len(), 2, "demoted, not dropped");
        }
        pool.mark_up(set[0]);
        let firsts: Vec<usize> = (0..4).map(|_| pool.read_order("doc")[0]).collect();
        assert!(firsts.contains(&set[0]), "recovered backend rejoins the rotation");

        let health = pool.health_snapshot();
        assert!(health[set[0]].healthy);
        assert_eq!(health[set[0]].failures, 1);
        assert_eq!(health[set[0]].successes, 1);
    }

    #[test]
    fn drain_and_down_are_distinguished_in_health() {
        let pool = pool3(1);
        pool.mark_draining(0);
        pool.mark_down(1);
        let health = pool.health_snapshot();
        assert!(health[0].draining && !health[0].healthy);
        assert!(!health[1].draining && !health[1].healthy);
    }

    #[test]
    fn recorded_placements_override_ring_placement() {
        let pool = pool3(1);
        let ring = pool.replica_set("moved")[0];
        let other = (ring + 1) % 3;
        pool.record_placement("moved", vec![other]);
        assert_eq!(pool.placement("moved"), Some(vec![other]));
        assert_eq!(pool.read_order("moved"), vec![other]);
        // Documents without a recorded upload still follow the ring.
        assert_eq!(pool.read_order("elsewhere"), pool.replica_set("elsewhere"));
    }
}
