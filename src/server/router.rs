//! # `mhxr` — the shard router
//!
//! One JSON/HTTP front end over N `mhxd` backends, speaking the *same*
//! wire protocol clients already use — a client cannot tell a router
//! from a single node except for the extra `/stats` sections.
//!
//! ```text
//!                clients (keep-alive, wire protocol)
//!                          │
//!               Router (mhxr, evented front end)
//!          consistent hash on document id (BackendPool)
//!            │                │                │
//!         mhxd shard 0     mhxd shard 1     mhxd shard 2
//! ```
//!
//! * **Routing** — `/query` and `/execute` resolve their target document
//!   and go to its replica set ([`BackendPool::read_order`], round-robin
//!   across replicas). `PUT /documents/{id}` walks the ring and uploads
//!   to `--replicas K` distinct shards. Documents are immutable after
//!   upload, so replication is re-upload + deterministic placement — no
//!   consensus, and two routers over the same `--shard` list agree.
//! * **Scatter/gather** — `GET /documents` unions all shards' listings;
//!   `GET /stats` nests every shard's stats under `shards` plus a
//!   `router` section (backend health, failover counters, the idle
//!   backend-connection gauge).
//! * **Failover** — a connection error or the typed `503`/
//!   `shutting_down` drain signal from one shard retries the next
//!   replica; only when every replica failed does the client see an
//!   error, and it is the distinct `502`/`bad_gateway` kind. Any other
//!   response (including 4xx — deterministic on every replica) passes
//!   through verbatim.
//! * **Prepared statements** — the router keeps a per-client-connection
//!   handle table (`ConnCore`): `/prepare` validates eagerly on one
//!   backend, `/execute` lazily re-prepares the statement on whichever
//!   pooled backend connection the read lands on, so handles
//!   transparently survive failover *and* connection pooling.
//!
//! ## Multiplexed backend connections
//!
//! Backend connections are **pooled, not pinned**: a small LIFO free
//! list per shard (`RouterCore`) is shared by every client connection,
//! so a thousand idle clients parked on the router's event loop hold
//! zero backend sockets — backend connection count tracks *concurrent
//! request execution* (bounded by the worker count), not client count.
//! Because a pooled backend session is shared across clients, the router
//! injects the client's **complete** options object
//! (`wire::options_json`) into every forwarded `/query` and
//! `/execute`, making backend session state irrelevant per request. One
//! consequence: the wire defaults (not a backend catalog's custom
//! defaults) are what an option-silent client gets through the router.

use crate::server::client::{Client, ClientError};
use crate::server::event::{EventConfig, EventLoop, Service};
use crate::server::handler::{body_object, MAX_PREPARED_PER_CONN};
use crate::server::http::Request;
use crate::server::pool::BackendPool;
use crate::server::wire;
use mhx_json::Json;
use mhx_xquery::EvalOptions;
use std::collections::{BTreeSet, HashMap};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Tuning knobs for [`Router::bind`] (mirrors
/// [`ServerConfig`](crate::server::ServerConfig)).
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Dispatch worker threads: the concurrent request execution bound
    /// (connection count is bounded only by file descriptors).
    pub workers: usize,
    /// Event-loop wait timeout: bounds drain-notice latency.
    pub poll_interval: Duration,
    /// How long a started request may take to arrive completely.
    pub request_timeout: Duration,
    /// Maximum request body size in bytes.
    pub max_body: usize,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            workers: 8,
            poll_interval: Duration::from_millis(25),
            request_timeout: Duration::from_secs(10),
            max_body: 16 * 1024 * 1024,
        }
    }
}

/// State shared by the router's event loop, workers, and the [`Router`]
/// handle.
pub(crate) struct RouterShared {
    core: RouterCore,
    config: RouterConfig,
    shutdown: AtomicBool,
    shutdown_requested: AtomicBool,
    accepted: AtomicU64,
    requests: AtomicU64,
    pipelined: AtomicU64,
    failovers: AtomicU64,
    re_prepares: AtomicU64,
}

impl RouterShared {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// The running router: a bound listener, its event loop, and the worker
/// pool. Like [`Server`](crate::server::Server), dropping without
/// [`Router::shutdown`] detaches the threads.
///
/// ```
/// use multihier_xquery::prelude::*;
/// use multihier_xquery::server::{client::Client, BackendPool, Router, RouterConfig};
/// use multihier_xquery::server::{Server, ServerConfig};
/// use std::sync::Arc;
///
/// // One real shard…
/// let catalog = Arc::new(Catalog::new());
/// catalog.insert(
///     "ms",
///     GoddagBuilder::new().hierarchy("w", "<r><w>a</w><w>b</w></r>").build().unwrap(),
/// );
/// let shard = Server::bind(catalog, "127.0.0.1:0", ServerConfig::default()).unwrap();
///
/// // …fronted by a router speaking the identical wire protocol.
/// let pool = Arc::new(BackendPool::new(vec![shard.addr().to_string()], 1));
/// let router = Router::bind(pool, "127.0.0.1:0", RouterConfig::default()).unwrap();
///
/// let mut client = Client::connect(&router.addr().to_string()).unwrap();
/// let out = client.xpath("ms", "count(/descendant::w)").unwrap();
/// assert_eq!(out.serialized, "2");
///
/// router.shutdown();
/// shard.shutdown();
/// ```
pub struct Router {
    addr: SocketAddr,
    shared: Arc<RouterShared>,
    evloop: EventLoop,
}

impl Router {
    /// Bind `addr` (port 0 for ephemeral) and start routing onto
    /// `backends`.
    pub fn bind(
        backends: Arc<BackendPool>,
        addr: &str,
        config: RouterConfig,
    ) -> io::Result<Router> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let workers = config.workers.max(1);
        let shared = Arc::new(RouterShared {
            // The free list never needs to exceed the execution bound:
            // at most `workers` requests hold a backend conn at once.
            core: RouterCore::new(backends, workers),
            config: RouterConfig { workers, ..config },
            shutdown: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            pipelined: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            re_prepares: AtomicU64::new(0),
        });
        let evloop = EventLoop::start(
            listener,
            "mhxr",
            workers,
            EventConfig {
                poll_interval: shared.config.poll_interval,
                request_timeout: shared.config.request_timeout,
                max_body: shared.config.max_body,
                max_idle: None,
            },
            Arc::new(RouterService { shared: Arc::clone(&shared) }),
        )?;
        Ok(Router { addr: local, shared, evloop })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The routing pool (placement + backend health).
    pub fn backends(&self) -> &Arc<BackendPool> {
        &self.shared.core.pool
    }

    /// True once a client posted `/shutdown` (or
    /// [`Router::request_shutdown`] ran); the owner loop polls this.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Ask the owner loop to shut down (same effect as `POST /shutdown`).
    pub fn request_shutdown(&self) {
        self.shared.shutdown_requested.store(true, Ordering::SeqCst);
    }

    /// Graceful shutdown of the *router only*: stop accepting, complete
    /// every response in progress, join all threads. The backends keep
    /// running — draining them is their owners' job.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.evloop.shutdown();
    }
}

/// The router's [`Service`]: counts connections/requests and routes each
/// complete request through the shared [`RouterCore`].
struct RouterService {
    shared: Arc<RouterShared>,
}

impl Service for RouterService {
    type Conn = ConnCore;

    fn connect(&self, _stream: &TcpStream) -> ConnCore {
        self.shared.accepted.fetch_add(1, Ordering::Relaxed);
        ConnCore::new()
    }

    fn handle(&self, conn: &mut ConnCore, req: &Request) -> (u16, Json) {
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        let (failovers, re_prepares) = (conn.failovers, conn.re_prepares);
        let out = route(&self.shared, conn, req);
        self.shared.failovers.fetch_add(conn.failovers - failovers, Ordering::Relaxed);
        self.shared.re_prepares.fetch_add(conn.re_prepares - re_prepares, Ordering::Relaxed);
        out
    }

    fn disconnect(&self, _conn: ConnCore) {}

    fn draining(&self) -> bool {
        self.shared.draining()
    }

    fn note_pipelined(&self) {
        self.shared.pipelined.fetch_add(1, Ordering::Relaxed);
    }
}

/// How one backend attempt ended.
enum Attempt {
    /// A complete HTTP exchange that is not the drain signal — pass it
    /// through (4xx included: deterministic on every replica).
    Done(u16, Json),
    /// Connection error, garbled response, or the typed drain signal:
    /// try the next replica. Carries the reason for the 502 message.
    Failover(String),
}

/// A pooled connection to one backend: the client plus the statements
/// *this connection's server session* has compiled, keyed by the
/// canonical `/prepare` body.
struct PooledBackend {
    client: Client,
    prepared: HashMap<String, u64>,
}

/// The router's shared backend machinery: the placement pool plus one
/// LIFO free list of pooled connections per backend. Checkout pops (or
/// dials); checkin pushes back **only after a clean exchange** — a
/// transport error or drain signal drops the connection, which also
/// invalidates its server-session handle table for free.
pub(crate) struct RouterCore {
    pool: Arc<BackendPool>,
    idle: Vec<Mutex<Vec<PooledBackend>>>,
    idle_cap: usize,
}

/// Per-client-connection router state, owned by the event loop's
/// connection table: the prepared-statement table (router handle space)
/// and the connection's evaluation options, injected whole into every
/// forwarded read so pooled backend sessions behave deterministically.
pub(crate) struct ConnCore {
    prepared: Vec<PreparedStmt>,
    opts: EvalOptions,
    pub(crate) failovers: u64,
    pub(crate) re_prepares: u64,
}

impl ConnCore {
    pub(crate) fn new() -> ConnCore {
        ConnCore {
            prepared: Vec::new(),
            opts: EvalOptions::default(),
            failovers: 0,
            re_prepares: 0,
        }
    }
}

/// One router-level prepared statement.
struct PreparedStmt {
    /// The original `/prepare` body — replayed on whichever pooled
    /// backend connection an execute lands on that has not compiled it.
    body: Json,
    /// Canonical identity on pooled sessions (the serialized body).
    key: String,
    /// Backend index that validated the statement eagerly.
    #[cfg_attr(not(test), allow(dead_code))]
    validated_on: usize,
}

impl RouterCore {
    pub(crate) fn new(pool: Arc<BackendPool>, idle_cap: usize) -> RouterCore {
        let n = pool.len();
        RouterCore { pool, idle: (0..n).map(|_| Mutex::new(Vec::new())).collect(), idle_cap }
    }

    /// Pop an idle pooled connection to backend `i`, or dial a fresh one.
    fn checkout(&self, i: usize) -> Result<PooledBackend, ClientError> {
        if let Some(b) = self.idle[i].lock().unwrap_or_else(PoisonError::into_inner).pop() {
            return Ok(b);
        }
        Ok(PooledBackend { client: Client::connect(self.pool.addr(i))?, prepared: HashMap::new() })
    }

    /// Return a connection after a clean exchange (dropped if the free
    /// list is full).
    fn checkin(&self, i: usize, backend: PooledBackend) {
        let mut idle = self.idle[i].lock().unwrap_or_else(PoisonError::into_inner);
        if idle.len() < self.idle_cap {
            idle.push(backend);
        }
    }

    /// Idle pooled backend connections across all shards (the `/stats`
    /// gauge).
    fn idle_connections(&self) -> usize {
        self.idle.iter().map(|l| l.lock().unwrap_or_else(PoisonError::into_inner).len()).sum()
    }

    /// One uninterpreted exchange with backend `i` on a pooled
    /// connection, with health classification: transport failures and
    /// the drain signal become [`Attempt::Failover`] (and drop the
    /// connection); everything else checks the connection back in and
    /// passes through.
    fn attempt(&self, i: usize, method: &str, path: &str, body: Option<&Json>) -> Attempt {
        let mut backend = match self.checkout(i) {
            Ok(b) => b,
            Err(e) => {
                self.pool.mark_down(i);
                return Attempt::Failover(format!("{}: {e}", self.pool.addr(i)));
            }
        };
        match backend.client.request(method, path, body) {
            Ok((status, json)) if wire::is_drain_envelope(status, &json) => {
                self.pool.mark_draining(i);
                Attempt::Failover(format!("{} is draining", self.pool.addr(i)))
            }
            Ok((status, json)) => {
                self.pool.mark_up(i);
                self.checkin(i, backend);
                Attempt::Done(status, json)
            }
            Err(e) => {
                self.pool.mark_down(i);
                Attempt::Failover(format!("{}: {e}", self.pool.addr(i)))
            }
        }
    }

    /// Try `order` until one backend completes the exchange; exhausting
    /// it is the router's own `502`/`bad_gateway`.
    fn try_replicas(
        &self,
        conn: &mut ConnCore,
        order: &[usize],
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> (u16, Json) {
        let mut tried = Vec::new();
        for (k, &i) in order.iter().enumerate() {
            if k > 0 {
                conn.failovers += 1;
            }
            match self.attempt(i, method, path, body) {
                Attempt::Done(status, json) => return (status, json),
                Attempt::Failover(why) => tried.push(why),
            }
        }
        let body =
            wire::bad_gateway_body(&format!("all replicas unavailable ({})", tried.join("; ")));
        (502, body)
    }

    /// Validate the request's `"options"` patch onto the connection —
    /// same strictness and error shape as a single node.
    fn patch_options(&self, conn: &mut ConnCore, body: &Json) -> Result<(), (u16, Json)> {
        if let Some(options) = body.get("options") {
            if let Err(message) = wire::apply_options(&mut conn.opts, options) {
                return Err((400, wire::protocol_error_body("bad_options", &message)));
            }
        }
        Ok(())
    }

    /// Resolve the target document like a single node does: explicit
    /// `doc` field, else the fleet's only document.
    fn resolve_doc(&self, body: &Json) -> Result<String, (u16, Json)> {
        if let Some(doc) = body.get("doc") {
            return doc.as_str().map(str::to_string).ok_or_else(|| {
                (400, wire::protocol_error_body("bad_request", "`doc` must be a string"))
            });
        }
        let union = self.documents_union()?;
        if union.len() == 1 {
            return Ok(union.into_iter().next().expect("len checked"));
        }
        Err((
            400,
            wire::protocol_error_body(
                "no_document",
                "no `doc` given and the fleet does not hold exactly one document",
            ),
        ))
    }

    pub(crate) fn query(&self, conn: &mut ConnCore, body: &Json) -> (u16, Json) {
        if let Err(err) = self.patch_options(conn, body) {
            return err;
        }
        let doc = match self.resolve_doc(body) {
            Ok(doc) => doc,
            Err(err) => return err,
        };
        let order = self.pool.read_order(&doc);
        let fwd = with_field(
            &with_field(body, "doc", Json::Str(doc)),
            "options",
            wire::options_json(&conn.opts),
        );
        self.try_replicas(conn, &order, "POST", "/query", Some(&fwd))
    }

    pub(crate) fn prepare(&self, conn: &mut ConnCore, body: &Json) -> (u16, Json) {
        if conn.prepared.len() >= MAX_PREPARED_PER_CONN {
            return (
                400,
                wire::protocol_error_body(
                    "too_many_prepared",
                    &format!(
                        "this connection already holds {MAX_PREPARED_PER_CONN} prepared queries"
                    ),
                ),
            );
        }
        // Eager validation on one backend: compile errors surface now,
        // exactly as on a single node.
        let key = body.to_string();
        let order = self.pool.any_order();
        let mut tried = Vec::new();
        for (k, &i) in order.iter().enumerate() {
            if k > 0 {
                conn.failovers += 1;
            }
            let mut backend = match self.checkout(i) {
                Ok(b) => b,
                Err(e) => {
                    self.pool.mark_down(i);
                    tried.push(format!("{}: {e}", self.pool.addr(i)));
                    continue;
                }
            };
            match backend.client.request("POST", "/prepare", Some(body)) {
                Ok((status, json)) if wire::is_drain_envelope(status, &json) => {
                    self.pool.mark_draining(i);
                    tried.push(format!("{} is draining", self.pool.addr(i)));
                }
                Ok((status, json)) if (200..300).contains(&status) => {
                    self.pool.mark_up(i);
                    let Some(h) = json.get("handle").and_then(Json::as_u64) else {
                        return (
                            502,
                            wire::bad_gateway_body("shard returned a malformed /prepare response"),
                        );
                    };
                    // The compiled handle stays with this *pooled
                    // connection* — whoever checks it out next reuses it.
                    backend.prepared.insert(key.clone(), h);
                    self.checkin(i, backend);
                    let lang =
                        json.get("lang").cloned().unwrap_or_else(|| Json::Str("xquery".into()));
                    conn.prepared.push(PreparedStmt { body: body.clone(), key, validated_on: i });
                    let handle = conn.prepared.len() - 1;
                    // Same envelope as a single node, in the router's
                    // handle space.
                    return (
                        200,
                        Json::Obj(vec![
                            ("ok".into(), Json::Bool(true)),
                            ("handle".into(), Json::Num(handle as f64)),
                            ("lang".into(), lang),
                        ]),
                    );
                }
                Ok((status, json)) => {
                    self.pool.mark_up(i);
                    self.checkin(i, backend);
                    return (status, json);
                }
                Err(e) => {
                    self.pool.mark_down(i);
                    tried.push(format!("{}: {e}", self.pool.addr(i)));
                }
            }
        }
        let body =
            wire::bad_gateway_body(&format!("all replicas unavailable ({})", tried.join("; ")));
        (502, body)
    }

    pub(crate) fn execute(&self, conn: &mut ConnCore, body: &Json) -> (u16, Json) {
        let Some(handle) = body.get("handle").and_then(Json::as_u64) else {
            return (
                400,
                wire::protocol_error_body("bad_request", "missing integer field `handle`"),
            );
        };
        if handle as usize >= conn.prepared.len() {
            return (
                404,
                wire::protocol_error_body(
                    "unknown_handle",
                    &format!("no prepared query with handle {handle} on this connection"),
                ),
            );
        }
        if let Err(err) = self.patch_options(conn, body) {
            return err;
        }
        let doc = match self.resolve_doc(body) {
            Ok(doc) => doc,
            Err(err) => return err,
        };
        let order = self.pool.read_order(&doc);
        let mut tried = Vec::new();
        for (k, &i) in order.iter().enumerate() {
            if k > 0 {
                conn.failovers += 1;
            }
            let mut backend = match self.checkout(i) {
                Ok(b) => b,
                Err(e) => {
                    self.pool.mark_down(i);
                    tried.push(format!("{}: {e}", self.pool.addr(i)));
                    continue;
                }
            };
            // Make sure this pooled connection's server session has the
            // statement compiled; re-prepare it here if not.
            let stmt = &conn.prepared[handle as usize];
            let backend_handle = match backend.prepared.get(&stmt.key).copied() {
                Some(h) => h,
                None => {
                    // A pooled session at its handle cap can't take one
                    // more: start a fresh connection instead of
                    // surfacing `too_many_prepared` for a foreign cap.
                    if backend.prepared.len() >= MAX_PREPARED_PER_CONN {
                        backend = match Client::connect(self.pool.addr(i)) {
                            Ok(client) => PooledBackend { client, prepared: HashMap::new() },
                            Err(e) => {
                                self.pool.mark_down(i);
                                tried.push(format!("{}: {e}", self.pool.addr(i)));
                                continue;
                            }
                        };
                    }
                    match backend.client.request("POST", "/prepare", Some(&stmt.body)) {
                        Ok((status, json)) if wire::is_drain_envelope(status, &json) => {
                            self.pool.mark_draining(i);
                            tried.push(format!("{} is draining", self.pool.addr(i)));
                            continue;
                        }
                        Ok((status, json)) if (200..300).contains(&status) => {
                            match json.get("handle").and_then(Json::as_u64) {
                                Some(h) => {
                                    backend.prepared.insert(stmt.key.clone(), h);
                                    conn.re_prepares += 1;
                                    h
                                }
                                None => {
                                    tried.push(format!(
                                        "{}: malformed /prepare response",
                                        self.pool.addr(i)
                                    ));
                                    continue;
                                }
                            }
                        }
                        // A deterministic compile rejection would fail
                        // identically everywhere: surface it.
                        Ok((status, json)) => {
                            self.pool.mark_up(i);
                            self.checkin(i, backend);
                            return (status, json);
                        }
                        Err(e) => {
                            self.pool.mark_down(i);
                            tried.push(format!("{}: {e}", self.pool.addr(i)));
                            continue;
                        }
                    }
                }
            };
            let fwd = with_field(
                &with_field(
                    &with_field(body, "doc", Json::Str(doc.clone())),
                    "handle",
                    Json::Num(backend_handle as f64),
                ),
                "options",
                wire::options_json(&conn.opts),
            );
            match backend.client.request("POST", "/execute", Some(&fwd)) {
                Ok((status, json)) if wire::is_drain_envelope(status, &json) => {
                    self.pool.mark_draining(i);
                    tried.push(format!("{} is draining", self.pool.addr(i)));
                }
                Ok((status, json)) => {
                    self.pool.mark_up(i);
                    self.checkin(i, backend);
                    return (status, json);
                }
                Err(e) => {
                    self.pool.mark_down(i);
                    tried.push(format!("{}: {e}", self.pool.addr(i)));
                }
            }
        }
        let body =
            wire::bad_gateway_body(&format!("all replicas unavailable ({})", tried.join("; ")));
        (502, body)
    }

    /// Upload `id` to its replica set, walking the ring past dead
    /// backends so the document still lands `replicas` times when a
    /// preferred shard is down.
    pub(crate) fn upload(&self, conn: &mut ConnCore, id: &str, body: &Json) -> (u16, Json) {
        let want = self.pool.replicas();
        let order = self.pool.ring_order(id);
        let mut placed = Vec::new();
        let mut tried = Vec::new();
        for &i in &order {
            if placed.len() == want {
                break;
            }
            match self.attempt(i, "PUT", &format!("/documents/{id}"), Some(body)) {
                Attempt::Done(status, _) if (200..300).contains(&status) => placed.push(i),
                // A deterministic rejection (malformed hierarchy, bad id)
                // would fail identically on every shard: surface it. Any
                // shard that already accepted keeps the document — uploads
                // of a fixed id are idempotent, so a client retry heals.
                Attempt::Done(status, json) => return (status, json),
                Attempt::Failover(why) => tried.push(why),
            }
        }
        conn.failovers += tried.len() as u64;
        if placed.is_empty() {
            let body =
                wire::bad_gateway_body(&format!("no shard accepted `{id}` ({})", tried.join("; ")));
            return (502, body);
        }
        self.pool.record_placement(id, placed.clone());
        let shards: Vec<Json> =
            placed.iter().map(|&i| Json::Str(self.pool.addr(i).into())).collect();
        (
            200,
            Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("id".into(), Json::Str(id.into())),
                ("replicas".into(), Json::Num(placed.len() as f64)),
                ("shards".into(), Json::Arr(shards)),
            ]),
        )
    }

    /// Scatter `GET /documents` to every backend and union the ids.
    /// Succeeds while at least one shard answers (a dead shard's
    /// documents are on their replicas anyway when `--replicas` > 1).
    fn documents_union(&self) -> Result<BTreeSet<String>, (u16, Json)> {
        let mut union = BTreeSet::new();
        let mut any_ok = false;
        let mut errors = Vec::new();
        for i in 0..self.pool.len() {
            match self.attempt(i, "GET", "/documents", None) {
                Attempt::Done(status, json) if (200..300).contains(&status) => {
                    match json.get("documents").and_then(Json::as_arr) {
                        Some(ids) => {
                            // Shards report objects with residency metadata;
                            // accept bare-string ids from older backends too.
                            union.extend(ids.iter().filter_map(|v| {
                                v.get("id")
                                    .and_then(Json::as_str)
                                    .or_else(|| v.as_str())
                                    .map(str::to_string)
                            }));
                            any_ok = true;
                        }
                        None => errors.push(format!("{}: malformed /documents", self.pool.addr(i))),
                    }
                }
                Attempt::Done(status, _) => {
                    errors.push(format!("{}: status {status}", self.pool.addr(i)));
                }
                Attempt::Failover(why) => errors.push(why),
            }
        }
        if any_ok {
            Ok(union)
        } else {
            let body = wire::bad_gateway_body(&format!(
                "no shard answered /documents ({})",
                errors.join("; ")
            ));
            Err((502, body))
        }
    }

    pub(crate) fn documents(&self) -> (u16, Json) {
        match self.documents_union() {
            Ok(union) => (
                200,
                Json::Obj(vec![
                    ("ok".into(), Json::Bool(true)),
                    ("documents".into(), Json::Arr(union.into_iter().map(Json::Str).collect())),
                ]),
            ),
            Err(err) => err,
        }
    }

    /// Scatter `GET /stats`, gather per-shard stats plus the router's own
    /// health/counter section and cross-shard totals.
    fn stats(&self, shared: &RouterShared) -> (u16, Json) {
        let mut shards = Vec::new();
        let mut shard_requests = 0u64;
        let mut shard_documents = 0u64;
        for i in 0..self.pool.len() {
            let addr = self.pool.addr(i).to_string();
            match self.attempt(i, "GET", "/stats", None) {
                Attempt::Done(status, json) if (200..300).contains(&status) => {
                    shard_requests += json
                        .get("server")
                        .and_then(|s| s.get("requests"))
                        .and_then(Json::as_u64)
                        .unwrap_or(0);
                    shard_documents += json.get("documents").and_then(Json::as_u64).unwrap_or(0);
                    shards.push(Json::Obj(vec![
                        ("addr".into(), Json::Str(addr)),
                        ("stats".into(), json),
                    ]));
                }
                _ => shards.push(Json::Obj(vec![
                    ("addr".into(), Json::Str(addr)),
                    ("error".into(), Json::Str("unreachable or draining".into())),
                ])),
            }
        }
        let backends: Vec<Json> = self
            .pool
            .health_snapshot()
            .into_iter()
            .map(|h| {
                Json::Obj(vec![
                    ("addr".into(), Json::Str(h.addr)),
                    ("healthy".into(), Json::Bool(h.healthy)),
                    ("draining".into(), Json::Bool(h.draining)),
                    ("failures".into(), Json::Num(h.failures as f64)),
                    ("successes".into(), Json::Num(h.successes as f64)),
                ])
            })
            .collect();
        (
            200,
            Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                (
                    "router".into(),
                    Json::Obj(vec![
                        ("workers".into(), Json::Num(shared.config.workers as f64)),
                        ("replicas".into(), Json::Num(self.pool.replicas() as f64)),
                        (
                            "connections_accepted".into(),
                            Json::Num(shared.accepted.load(Ordering::Relaxed) as f64),
                        ),
                        (
                            "requests".into(),
                            Json::Num(shared.requests.load(Ordering::Relaxed) as f64),
                        ),
                        (
                            "pipelined_requests".into(),
                            Json::Num(shared.pipelined.load(Ordering::Relaxed) as f64),
                        ),
                        (
                            "failovers".into(),
                            Json::Num(shared.failovers.load(Ordering::Relaxed) as f64),
                        ),
                        (
                            "re_prepares".into(),
                            Json::Num(shared.re_prepares.load(Ordering::Relaxed) as f64),
                        ),
                        (
                            "idle_backend_connections".into(),
                            Json::Num(self.idle_connections() as f64),
                        ),
                        ("backends".into(), Json::Arr(backends)),
                    ]),
                ),
                (
                    "totals".into(),
                    Json::Obj(vec![
                        ("shard_requests".into(), Json::Num(shard_requests as f64)),
                        ("shard_documents".into(), Json::Num(shard_documents as f64)),
                    ]),
                ),
                ("shards".into(), Json::Arr(shards)),
            ]),
        )
    }
}

/// Clone `body` with `field` set to `value` (replacing any existing
/// entry) — the router rewrites `doc`, `handle`, and `options` before
/// forwarding.
fn with_field(body: &Json, field: &str, value: Json) -> Json {
    let mut entries: Vec<(String, Json)> = body
        .as_obj()
        .map(|o| o.iter().filter(|(k, _)| k != field).cloned().collect())
        .unwrap_or_default();
    entries.push((field.to_string(), value));
    Json::Obj(entries)
}

fn route(shared: &RouterShared, conn: &mut ConnCore, req: &Request) -> (u16, Json) {
    // Path first, then method — same 405 discipline as the single-node
    // handler.
    let core = &shared.core;
    let method = req.method.as_str();
    let wrong_method =
        || (405, wire::protocol_error_body("method_not_allowed", "wrong method for this path"));
    let with_body = |f: &mut dyn FnMut(&Json) -> (u16, Json)| match body_object(req) {
        Ok(body) => f(&body),
        Err(err) => err,
    };
    match req.path.as_str() {
        "/healthz" | "/" => match method {
            "GET" => (200, Json::Obj(vec![("ok".into(), Json::Bool(true))])),
            _ => wrong_method(),
        },
        "/query" => match method {
            "POST" => with_body(&mut |body| core.query(conn, body)),
            _ => wrong_method(),
        },
        "/prepare" => match method {
            "POST" => with_body(&mut |body| core.prepare(conn, body)),
            _ => wrong_method(),
        },
        "/execute" => match method {
            "POST" => with_body(&mut |body| core.execute(conn, body)),
            _ => wrong_method(),
        },
        "/documents" => match method {
            "GET" => core.documents(),
            _ => wrong_method(),
        },
        "/stats" => match method {
            "GET" => core.stats(shared),
            _ => wrong_method(),
        },
        "/shutdown" => match method {
            "POST" => {
                shared.shutdown_requested.store(true, Ordering::SeqCst);
                (
                    200,
                    Json::Obj(vec![
                        ("ok".into(), Json::Bool(true)),
                        ("draining".into(), Json::Bool(true)),
                    ]),
                )
            }
            _ => wrong_method(),
        },
        path if path.strip_prefix("/documents/").is_some_and(|id| !id.is_empty()) => {
            let id = path.strip_prefix("/documents/").expect("guard matched");
            match method {
                "PUT" => with_body(&mut |body| core.upload(conn, id, body)),
                _ => wrong_method(),
            }
        }
        path => (404, wire::protocol_error_body("not_found", &format!("no route for `{path}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Catalog;
    use crate::server::{Server, ServerConfig};
    use mhx_goddag::GoddagBuilder;
    use std::io::{Read, Write};
    use std::net::TcpListener;
    use std::sync::atomic::AtomicUsize;

    const DRAIN_BODY: &str =
        r#"{"ok":false,"error":{"kind":"shutting_down","message":"draining"}}"#;
    const NOT_FOUND_BODY: &str =
        r#"{"ok":false,"error":{"kind":"unknown_document","message":"no document `ms`"}}"#;

    /// A canned-response backend: answers every request on every
    /// connection with `status` + `body`, counting requests served.
    fn mock_backend(status: u16, body: &'static str) -> (String, Arc<AtomicUsize>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let hits = Arc::new(AtomicUsize::new(0));
        let shared_hits = Arc::clone(&hits);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut s) = stream else { continue };
                let hits = Arc::clone(&shared_hits);
                std::thread::spawn(move || {
                    let mut buf = Vec::new();
                    let mut chunk = [0u8; 4096];
                    loop {
                        // Read one Content-Length-framed request.
                        let end = loop {
                            if let Some(he) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                                let head = String::from_utf8_lossy(&buf[..he]).to_string();
                                let len = head
                                    .lines()
                                    .filter_map(|l| {
                                        l.to_ascii_lowercase()
                                            .strip_prefix("content-length:")
                                            .and_then(|v| v.trim().parse::<usize>().ok())
                                    })
                                    .next()
                                    .unwrap_or(0);
                                if buf.len() >= he + 4 + len {
                                    break he + 4 + len;
                                }
                            }
                            match s.read(&mut chunk) {
                                Ok(0) => return,
                                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                                Err(_) => return,
                            }
                        };
                        buf.drain(..end);
                        hits.fetch_add(1, Ordering::SeqCst);
                        let resp = format!(
                            "HTTP/1.1 {status} X\r\nContent-Type: application/json\r\n\
                             Content-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
                            body.len()
                        );
                        if s.write_all(resp.as_bytes()).is_err() {
                            return;
                        }
                    }
                });
            }
        });
        (addr, hits)
    }

    fn error_kind_of(json: &Json) -> &str {
        json.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str).unwrap_or("")
    }

    fn query_body(doc: &str) -> Json {
        mhx_json::parse(&format!(
            r#"{{"doc":"{doc}","lang":"xpath","query":"count(/descendant::w)"}}"#
        ))
        .unwrap()
    }

    #[test]
    fn a_drain_signal_retries_each_replica_exactly_once_then_502s() {
        let (a, hits_a) = mock_backend(503, DRAIN_BODY);
        let (b, hits_b) = mock_backend(503, DRAIN_BODY);
        let pool = Arc::new(BackendPool::new(vec![a, b], 2));
        let core = RouterCore::new(Arc::clone(&pool), 4);
        let mut conn = ConnCore::new();
        let (status, json) = core.query(&mut conn, &query_body("ms"));
        assert_eq!(status, 502);
        assert_eq!(error_kind_of(&json), wire::BAD_GATEWAY_KIND);
        assert_eq!(hits_a.load(Ordering::SeqCst), 1, "each replica tried exactly once");
        assert_eq!(hits_b.load(Ordering::SeqCst), 1, "each replica tried exactly once");
        assert_eq!(conn.failovers, 1, "one retry beyond the first attempt");
        let health = pool.health_snapshot();
        assert!(health.iter().all(|h| h.draining && !h.healthy), "both marked draining");
        assert_eq!(core.idle_connections(), 0, "drain attempts never pool their connection");
    }

    #[test]
    fn a_non_retryable_4xx_surfaces_immediately_without_failover() {
        let (a, hits_a) = mock_backend(404, NOT_FOUND_BODY);
        let (b, hits_b) = mock_backend(404, NOT_FOUND_BODY);
        let pool = Arc::new(BackendPool::new(vec![a, b], 2));
        // Which mock leads the replica set is hash-determined — read it
        // off the pool instead of assuming (the first read uses the
        // cursor's initial rotation, i.e. the unrotated set).
        let first = pool.replica_set("ms")[0];
        let core = RouterCore::new(Arc::clone(&pool), 4);
        let mut conn = ConnCore::new();
        let (status, json) = core.query(&mut conn, &query_body("ms"));
        assert_eq!(status, 404);
        assert_eq!(error_kind_of(&json), "unknown_document");
        let (h_first, h_other) = if first == 0 { (&hits_a, &hits_b) } else { (&hits_b, &hits_a) };
        assert_eq!(h_first.load(Ordering::SeqCst), 1, "only the first replica is asked");
        assert_eq!(h_other.load(Ordering::SeqCst), 0, "a 4xx never fails over");
        assert_eq!(conn.failovers, 0);
        assert_eq!(core.idle_connections(), 1, "the clean exchange pooled its connection");
    }

    fn live_shard(docs: &[&str]) -> Server {
        let catalog = Arc::new(Catalog::new());
        for id in docs {
            catalog.insert(
                *id,
                GoddagBuilder::new().hierarchy("w", "<r><w>a</w><w>b</w></r>").build().unwrap(),
            );
        }
        Server::bind(
            catalog,
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                poll_interval: Duration::from_millis(5),
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn prepared_handles_re_prepare_transparently_after_failover() {
        let mut shards = vec![Some(live_shard(&["ms"])), Some(live_shard(&["ms"]))];
        let addrs: Vec<String> =
            shards.iter().map(|s| s.as_ref().unwrap().addr().to_string()).collect();
        let pool = Arc::new(BackendPool::new(addrs, 2));
        let core = RouterCore::new(Arc::clone(&pool), 4);
        let mut conn = ConnCore::new();

        let prep = mhx_json::parse(r#"{"lang":"xpath","query":"count(/descendant::w)"}"#).unwrap();
        let (status, json) = core.prepare(&mut conn, &prep);
        assert_eq!(status, 200, "{json}");
        assert_eq!(json.get("handle").and_then(Json::as_u64), Some(0), "router handle space");

        // Kill the one backend that validated the statement before any
        // execute: every execute path must now transparently re-prepare
        // on the surviving replica's pooled connection.
        let owner = conn.prepared[0].validated_on;
        assert_eq!(conn.re_prepares, 0, "the eager prepare is not a re-prepare");
        shards[owner].take().unwrap().shutdown();

        let exec = mhx_json::parse(r#"{"handle":0,"doc":"ms"}"#).unwrap();
        let (status, json) = core.execute(&mut conn, &exec);
        assert_eq!(status, 200, "{json}");
        assert_eq!(json.get("serialized").and_then(Json::as_str), Some("2"));
        assert!(conn.re_prepares >= 1, "the statement was re-prepared after failover");

        // And the re-prepared handle stays with the pooled connection: a
        // second execute reuses it.
        let re_prepares = conn.re_prepares;
        let (status, json) = core.execute(&mut conn, &exec);
        assert_eq!(status, 200, "{json}");
        assert_eq!(json.get("serialized").and_then(Json::as_str), Some("2"));
        assert_eq!(conn.re_prepares, re_prepares, "handle cached on the survivor's connection");

        // A *different* client connection through the same core also
        // reuses the pooled statement — the handle table travels with
        // the backend connection, not the client.
        let mut other = ConnCore::new();
        let (status, json) = core.prepare(&mut other, &prep);
        assert_eq!(status, 200, "{json}");

        for s in shards.into_iter().flatten() {
            s.shutdown();
        }
    }

    #[test]
    fn uploads_replicate_to_k_shards_and_documents_merge() {
        let shards = [live_shard(&[]), live_shard(&[])];
        let addrs: Vec<String> = shards.iter().map(|s| s.addr().to_string()).collect();
        let pool = Arc::new(BackendPool::new(addrs, 2));
        let core = RouterCore::new(Arc::clone(&pool), 4);
        let mut conn = ConnCore::new();

        let upload =
            mhx_json::parse(r#"{"hierarchies":[{"name":"w","xml":"<r><w>a</w><w>b</w></r>"}]}"#)
                .unwrap();
        let (status, json) = core.upload(&mut conn, "novel", &upload);
        assert_eq!(status, 200, "{json}");
        assert_eq!(json.get("replicas").and_then(Json::as_u64), Some(2));
        for shard in &shards {
            assert!(
                shard.catalog().document_ids().contains(&"novel".to_string()),
                "every shard holds its replica"
            );
        }
        let (status, json) = core.documents();
        assert_eq!(status, 200);
        let ids = json.get("documents").and_then(Json::as_arr).unwrap();
        assert_eq!(ids.len(), 1, "replicas merge to one id: {json}");

        let (status, json) = core.query(&mut conn, &query_body("novel"));
        assert_eq!(status, 200, "{json}");
        assert_eq!(json.get("serialized").and_then(Json::as_str), Some("2"));

        for s in shards {
            s.shutdown();
        }
    }
}
