//! # `mhxr` — the shard router
//!
//! One JSON/HTTP front end over N `mhxd` backends, speaking the *same*
//! wire protocol clients already use — a client cannot tell a router
//! from a single node except for the extra `/stats` sections.
//!
//! ```text
//!                clients (keep-alive, wire protocol)
//!                          │
//!                    Router (mhxr)
//!          consistent hash on document id (BackendPool)
//!            │                │                │
//!         mhxd shard 0     mhxd shard 1     mhxd shard 2
//! ```
//!
//! * **Routing** — `/query` and `/execute` resolve their target document
//!   and go to its replica set ([`BackendPool::read_order`], round-robin
//!   across replicas). `PUT /documents/{id}` walks the ring and uploads
//!   to `--replicas K` distinct shards. Documents are immutable after
//!   upload, so replication is re-upload + deterministic placement — no
//!   consensus, and two routers over the same `--shard` list agree.
//! * **Scatter/gather** — `GET /documents` unions all shards' listings;
//!   `GET /stats` nests every shard's stats under `shards` plus a
//!   `router` section (backend health, failover counters).
//! * **Failover** — a connection error or the typed `503`/
//!   `shutting_down` drain signal from one shard retries the next
//!   replica; only when every replica failed does the client see an
//!   error, and it is the distinct `502`/`bad_gateway` kind. Any other
//!   response (including 4xx — deterministic on every replica) passes
//!   through verbatim.
//! * **Prepared statements** — the router keeps a per-client-connection
//!   handle table (`ConnCore`): `/prepare` validates eagerly on one
//!   backend, `/execute` lazily re-prepares the statement on whichever
//!   backend the read lands on, so handles transparently survive
//!   failover.
//!
//! The router's own connection to each backend is one [`Client`] per
//! router-side client connection (lazily opened), so backend sessions
//! map 1:1 to client sessions and per-connection server state behaves
//! as if the client were talking to the shard directly.

use crate::server::accept::AcceptPool;
use crate::server::client::{Client, ClientError};
use crate::server::handler::{body_object, MAX_PREPARED_PER_CONN};
use crate::server::http::{self, ReadError, Request};
use crate::server::pool::BackendPool;
use crate::server::wire;
use mhx_json::Json;
use std::collections::BTreeSet;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tuning knobs for [`Router::bind`] (mirrors
/// [`ServerConfig`](crate::server::ServerConfig)).
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Worker threads; each serves one client connection at a time, so
    /// this is also the keep-alive connection concurrency.
    pub workers: usize,
    /// How often an idle connection re-checks the drain flag.
    pub poll_interval: Duration,
    /// How long a started request may take to arrive completely.
    pub request_timeout: Duration,
    /// Maximum request body size in bytes.
    pub max_body: usize,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            workers: 8,
            poll_interval: Duration::from_millis(25),
            request_timeout: Duration::from_secs(10),
            max_body: 16 * 1024 * 1024,
        }
    }
}

/// State shared by the router's workers and the [`Router`] handle.
pub(crate) struct RouterShared {
    pool: Arc<BackendPool>,
    config: RouterConfig,
    shutdown: AtomicBool,
    shutdown_requested: AtomicBool,
    accepted: AtomicU64,
    requests: AtomicU64,
    failovers: AtomicU64,
    re_prepares: AtomicU64,
}

impl RouterShared {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// The running router: a bound listener, its acceptor thread, and the
/// worker pool. Like [`Server`](crate::server::Server), dropping without
/// [`Router::shutdown`] detaches the threads.
///
/// ```
/// use multihier_xquery::prelude::*;
/// use multihier_xquery::server::{client::Client, BackendPool, Router, RouterConfig};
/// use multihier_xquery::server::{Server, ServerConfig};
/// use std::sync::Arc;
///
/// // One real shard…
/// let catalog = Arc::new(Catalog::new());
/// catalog.insert(
///     "ms",
///     GoddagBuilder::new().hierarchy("w", "<r><w>a</w><w>b</w></r>").build().unwrap(),
/// );
/// let shard = Server::bind(catalog, "127.0.0.1:0", ServerConfig::default()).unwrap();
///
/// // …fronted by a router speaking the identical wire protocol.
/// let pool = Arc::new(BackendPool::new(vec![shard.addr().to_string()], 1));
/// let router = Router::bind(pool, "127.0.0.1:0", RouterConfig::default()).unwrap();
///
/// let mut client = Client::connect(&router.addr().to_string()).unwrap();
/// let out = client.xpath("ms", "count(/descendant::w)").unwrap();
/// assert_eq!(out.serialized, "2");
///
/// router.shutdown();
/// shard.shutdown();
/// ```
pub struct Router {
    addr: SocketAddr,
    shared: Arc<RouterShared>,
    pool: AcceptPool,
}

impl Router {
    /// Bind `addr` (port 0 for ephemeral) and start routing onto
    /// `backends`.
    pub fn bind(
        backends: Arc<BackendPool>,
        addr: &str,
        config: RouterConfig,
    ) -> io::Result<Router> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let workers = config.workers.max(1);
        let poll_interval = config.poll_interval;
        let shared = Arc::new(RouterShared {
            pool: backends,
            config: RouterConfig { workers, ..config },
            shutdown: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            re_prepares: AtomicU64::new(0),
        });
        let draining: Arc<dyn Fn() -> bool + Send + Sync> = {
            let shared = Arc::clone(&shared);
            Arc::new(move || shared.draining())
        };
        let handler: Arc<dyn Fn(TcpStream) + Send + Sync> = {
            let shared = Arc::clone(&shared);
            Arc::new(move |stream| {
                shared.accepted.fetch_add(1, Ordering::Relaxed);
                handle_connection(&shared, stream);
            })
        };
        let pool = AcceptPool::start(listener, "mhxr", workers, poll_interval, draining, handler);
        Ok(Router { addr: local, shared, pool })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The routing pool (placement + backend health).
    pub fn backends(&self) -> &Arc<BackendPool> {
        &self.shared.pool
    }

    /// True once a client posted `/shutdown` (or
    /// [`Router::request_shutdown`] ran); the owner loop polls this.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Ask the owner loop to shut down (same effect as `POST /shutdown`).
    pub fn request_shutdown(&self) {
        self.shared.shutdown_requested.store(true, Ordering::SeqCst);
    }

    /// Graceful shutdown of the *router only*: stop accepting, complete
    /// every response in progress, join all threads. The backends keep
    /// running — draining them is their owners' job.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor out of `accept()`; it sees the flag and exits.
        let _ = TcpStream::connect(self.addr);
        self.pool.join();
    }
}

/// How one backend attempt ended.
enum Attempt {
    /// A complete HTTP exchange that is not the drain signal — pass it
    /// through (4xx included: deterministic on every replica).
    Done(u16, Json),
    /// Connection error, garbled response, or the typed drain signal:
    /// try the next replica. Carries the reason for the 502 message.
    Failover(String),
}

/// Per-client-connection router state: one lazily-opened backend
/// [`Client`] per shard (so backend sessions map 1:1 to client
/// sessions) and the prepared-statement table that survives failover.
pub(crate) struct ConnCore {
    pool: Arc<BackendPool>,
    conns: Vec<Option<Client>>,
    prepared: Vec<PreparedEntry>,
    pub(crate) failovers: u64,
    pub(crate) re_prepares: u64,
}

/// One router-level prepared statement.
struct PreparedEntry {
    /// The original `/prepare` body — replayed verbatim when a failover
    /// lands the execute on a backend that has not compiled it yet.
    request: Json,
    /// Backend-local handle per backend, index-aligned with the pool;
    /// cleared whenever that backend's connection is rebuilt (a fresh
    /// connection is a fresh server session, so old handles are gone).
    per_backend: Vec<Option<u64>>,
}

enum EnsureError {
    /// This backend cannot compile right now — try the next replica.
    Failover(String),
    /// The statement itself is bad (deterministic compile error) —
    /// surface the backend's response verbatim.
    Surface(u16, Json),
}

impl ConnCore {
    pub(crate) fn new(pool: Arc<BackendPool>) -> ConnCore {
        let n = pool.len();
        ConnCore {
            pool,
            conns: (0..n).map(|_| None).collect(),
            prepared: Vec::new(),
            failovers: 0,
            re_prepares: 0,
        }
    }

    /// The lazily-opened connection to backend `i`.
    fn conn(&mut self, i: usize) -> Result<&mut Client, ClientError> {
        if self.conns[i].is_none() {
            let client = Client::connect(self.pool.addr(i))?;
            // A fresh connection is a fresh server session: any handle
            // prepared over a previous connection to this backend is gone.
            for p in &mut self.prepared {
                p.per_backend[i] = None;
            }
            self.conns[i] = Some(client);
        }
        Ok(self.conns[i].as_mut().expect("just ensured"))
    }

    fn drop_conn(&mut self, i: usize) {
        self.conns[i] = None;
        for p in &mut self.prepared {
            p.per_backend[i] = None;
        }
    }

    /// One uninterpreted request to backend `i`. `Err` means the
    /// connection is unusable (and has been dropped); `Ok` is a complete
    /// exchange, which may still be the backend's drain signal.
    fn forward(
        &mut self,
        i: usize,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<(u16, Json), ClientError> {
        let res = match self.conn(i) {
            Ok(client) => client.request(method, path, body),
            Err(e) => Err(e),
        };
        if res.is_err() {
            self.drop_conn(i);
        }
        res
    }

    /// [`ConnCore::forward`] plus health classification: transport
    /// failures and the drain signal become [`Attempt::Failover`] and
    /// demote the backend; everything else marks it up and passes
    /// through.
    fn attempt(&mut self, i: usize, method: &str, path: &str, body: Option<&Json>) -> Attempt {
        match self.forward(i, method, path, body) {
            Ok((status, json)) if wire::is_drain_envelope(status, &json) => {
                self.pool.mark_draining(i);
                Attempt::Failover(format!("{} is draining", self.pool.addr(i)))
            }
            Ok((status, json)) => {
                self.pool.mark_up(i);
                Attempt::Done(status, json)
            }
            Err(e) => {
                self.pool.mark_down(i);
                Attempt::Failover(format!("{}: {e}", self.pool.addr(i)))
            }
        }
    }

    /// Try `order` until one backend completes the exchange; exhausting
    /// it is the router's own `502`/`bad_gateway`. Returns the winning
    /// backend index alongside the response.
    fn try_replicas(
        &mut self,
        order: &[usize],
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> (u16, Json, Option<usize>) {
        let mut tried = Vec::new();
        for (k, &i) in order.iter().enumerate() {
            if k > 0 {
                self.failovers += 1;
            }
            match self.attempt(i, method, path, body) {
                Attempt::Done(status, json) => return (status, json, Some(i)),
                Attempt::Failover(why) => tried.push(why),
            }
        }
        let body =
            wire::bad_gateway_body(&format!("all replicas unavailable ({})", tried.join("; ")));
        (502, body, None)
    }

    /// Resolve the target document like a single node does: explicit
    /// `doc` field, else the fleet's only document.
    fn resolve_doc(&mut self, body: &Json) -> Result<String, (u16, Json)> {
        if let Some(doc) = body.get("doc") {
            return doc.as_str().map(str::to_string).ok_or_else(|| {
                (400, wire::protocol_error_body("bad_request", "`doc` must be a string"))
            });
        }
        let union = self.documents_union()?;
        if union.len() == 1 {
            return Ok(union.into_iter().next().expect("len checked"));
        }
        Err((
            400,
            wire::protocol_error_body(
                "no_document",
                "no `doc` given and the fleet does not hold exactly one document",
            ),
        ))
    }

    pub(crate) fn query(&mut self, body: &Json) -> (u16, Json) {
        let doc = match self.resolve_doc(body) {
            Ok(doc) => doc,
            Err(err) => return err,
        };
        let order = self.pool.read_order(&doc);
        let fwd = with_field(body, "doc", Json::Str(doc));
        let (status, json, _) = self.try_replicas(&order, "POST", "/query", Some(&fwd));
        (status, json)
    }

    pub(crate) fn prepare(&mut self, body: &Json) -> (u16, Json) {
        if self.prepared.len() >= MAX_PREPARED_PER_CONN {
            return (
                400,
                wire::protocol_error_body(
                    "too_many_prepared",
                    &format!(
                        "this connection already holds {MAX_PREPARED_PER_CONN} prepared queries"
                    ),
                ),
            );
        }
        // Eager validation on one backend: compile errors surface now,
        // exactly as on a single node.
        let order = self.pool.any_order();
        let (status, json, winner) = self.try_replicas(&order, "POST", "/prepare", Some(body));
        let Some(i) = winner else { return (status, json) };
        if !(200..300).contains(&status) {
            return (status, json);
        }
        let Some(backend_handle) = json.get("handle").and_then(Json::as_u64) else {
            return (502, wire::bad_gateway_body("shard returned a malformed /prepare response"));
        };
        let mut per_backend = vec![None; self.pool.len()];
        per_backend[i] = Some(backend_handle);
        self.prepared.push(PreparedEntry { request: body.clone(), per_backend });
        let handle = self.prepared.len() - 1;
        // Same envelope as a single node, in the router's handle space.
        let lang = json.get("lang").cloned().unwrap_or_else(|| Json::Str("xquery".into()));
        (
            200,
            Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("handle".into(), Json::Num(handle as f64)),
                ("lang".into(), lang),
            ]),
        )
    }

    /// Make sure backend `i`'s current connection has prepared statement
    /// `entry`, compiling it there if needed.
    fn ensure_prepared(&mut self, i: usize, entry: usize) -> Result<u64, EnsureError> {
        if let Some(h) = self.prepared[entry].per_backend[i] {
            return Ok(h);
        }
        let req = self.prepared[entry].request.clone();
        match self.attempt(i, "POST", "/prepare", Some(&req)) {
            Attempt::Done(status, json) if (200..300).contains(&status) => {
                match json.get("handle").and_then(Json::as_u64) {
                    Some(h) => {
                        self.prepared[entry].per_backend[i] = Some(h);
                        self.re_prepares += 1;
                        Ok(h)
                    }
                    None => Err(EnsureError::Failover(format!(
                        "{}: malformed /prepare response",
                        self.pool.addr(i)
                    ))),
                }
            }
            Attempt::Done(status, json) => Err(EnsureError::Surface(status, json)),
            Attempt::Failover(why) => Err(EnsureError::Failover(why)),
        }
    }

    pub(crate) fn execute(&mut self, body: &Json) -> (u16, Json) {
        let Some(handle) = body.get("handle").and_then(Json::as_u64) else {
            return (
                400,
                wire::protocol_error_body("bad_request", "missing integer field `handle`"),
            );
        };
        if handle as usize >= self.prepared.len() {
            return (
                404,
                wire::protocol_error_body(
                    "unknown_handle",
                    &format!("no prepared query with handle {handle} on this connection"),
                ),
            );
        }
        let doc = match self.resolve_doc(body) {
            Ok(doc) => doc,
            Err(err) => return err,
        };
        let order = self.pool.read_order(&doc);
        let mut tried = Vec::new();
        for (k, &i) in order.iter().enumerate() {
            if k > 0 {
                self.failovers += 1;
            }
            let backend_handle = match self.ensure_prepared(i, handle as usize) {
                Ok(h) => h,
                Err(EnsureError::Failover(why)) => {
                    tried.push(why);
                    continue;
                }
                Err(EnsureError::Surface(status, json)) => return (status, json),
            };
            let fwd = with_field(
                &with_field(body, "doc", Json::Str(doc.clone())),
                "handle",
                Json::Num(backend_handle as f64),
            );
            match self.attempt(i, "POST", "/execute", Some(&fwd)) {
                Attempt::Done(status, json) => return (status, json),
                Attempt::Failover(why) => tried.push(why),
            }
        }
        let body =
            wire::bad_gateway_body(&format!("all replicas unavailable ({})", tried.join("; ")));
        (502, body)
    }

    /// Upload `id` to its replica set, walking the ring past dead
    /// backends so the document still lands `replicas` times when a
    /// preferred shard is down.
    pub(crate) fn upload(&mut self, id: &str, body: &Json) -> (u16, Json) {
        let want = self.pool.replicas();
        let order = self.pool.ring_order(id);
        let mut placed = Vec::new();
        let mut tried = Vec::new();
        for &i in &order {
            if placed.len() == want {
                break;
            }
            match self.attempt(i, "PUT", &format!("/documents/{id}"), Some(body)) {
                Attempt::Done(status, _) if (200..300).contains(&status) => placed.push(i),
                // A deterministic rejection (malformed hierarchy, bad id)
                // would fail identically on every shard: surface it. Any
                // shard that already accepted keeps the document — uploads
                // of a fixed id are idempotent, so a client retry heals.
                Attempt::Done(status, json) => return (status, json),
                Attempt::Failover(why) => tried.push(why),
            }
        }
        self.failovers += tried.len() as u64;
        if placed.is_empty() {
            let body =
                wire::bad_gateway_body(&format!("no shard accepted `{id}` ({})", tried.join("; ")));
            return (502, body);
        }
        self.pool.record_placement(id, placed.clone());
        let shards: Vec<Json> =
            placed.iter().map(|&i| Json::Str(self.pool.addr(i).into())).collect();
        (
            200,
            Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("id".into(), Json::Str(id.into())),
                ("replicas".into(), Json::Num(placed.len() as f64)),
                ("shards".into(), Json::Arr(shards)),
            ]),
        )
    }

    /// Scatter `GET /documents` to every backend and union the ids.
    /// Succeeds while at least one shard answers (a dead shard's
    /// documents are on their replicas anyway when `--replicas` > 1).
    fn documents_union(&mut self) -> Result<BTreeSet<String>, (u16, Json)> {
        let mut union = BTreeSet::new();
        let mut any_ok = false;
        let mut errors = Vec::new();
        for i in 0..self.pool.len() {
            match self.attempt(i, "GET", "/documents", None) {
                Attempt::Done(status, json) if (200..300).contains(&status) => {
                    match json.get("documents").and_then(Json::as_arr) {
                        Some(ids) => {
                            union.extend(ids.iter().filter_map(|v| v.as_str().map(str::to_string)));
                            any_ok = true;
                        }
                        None => errors.push(format!("{}: malformed /documents", self.pool.addr(i))),
                    }
                }
                Attempt::Done(status, _) => {
                    errors.push(format!("{}: status {status}", self.pool.addr(i)));
                }
                Attempt::Failover(why) => errors.push(why),
            }
        }
        if any_ok {
            Ok(union)
        } else {
            let body = wire::bad_gateway_body(&format!(
                "no shard answered /documents ({})",
                errors.join("; ")
            ));
            Err((502, body))
        }
    }

    pub(crate) fn documents(&mut self) -> (u16, Json) {
        match self.documents_union() {
            Ok(union) => (
                200,
                Json::Obj(vec![
                    ("ok".into(), Json::Bool(true)),
                    ("documents".into(), Json::Arr(union.into_iter().map(Json::Str).collect())),
                ]),
            ),
            Err(err) => err,
        }
    }

    /// Scatter `GET /stats`, gather per-shard stats plus the router's own
    /// health/counter section and cross-shard totals.
    fn stats(&mut self, shared: &RouterShared) -> (u16, Json) {
        let mut shards = Vec::new();
        let mut shard_requests = 0u64;
        let mut shard_documents = 0u64;
        for i in 0..self.pool.len() {
            let addr = self.pool.addr(i).to_string();
            match self.attempt(i, "GET", "/stats", None) {
                Attempt::Done(status, json) if (200..300).contains(&status) => {
                    shard_requests += json
                        .get("server")
                        .and_then(|s| s.get("requests"))
                        .and_then(Json::as_u64)
                        .unwrap_or(0);
                    shard_documents += json.get("documents").and_then(Json::as_u64).unwrap_or(0);
                    shards.push(Json::Obj(vec![
                        ("addr".into(), Json::Str(addr)),
                        ("stats".into(), json),
                    ]));
                }
                _ => shards.push(Json::Obj(vec![
                    ("addr".into(), Json::Str(addr)),
                    ("error".into(), Json::Str("unreachable or draining".into())),
                ])),
            }
        }
        let backends: Vec<Json> = self
            .pool
            .health_snapshot()
            .into_iter()
            .map(|h| {
                Json::Obj(vec![
                    ("addr".into(), Json::Str(h.addr)),
                    ("healthy".into(), Json::Bool(h.healthy)),
                    ("draining".into(), Json::Bool(h.draining)),
                    ("failures".into(), Json::Num(h.failures as f64)),
                    ("successes".into(), Json::Num(h.successes as f64)),
                ])
            })
            .collect();
        (
            200,
            Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                (
                    "router".into(),
                    Json::Obj(vec![
                        ("workers".into(), Json::Num(shared.config.workers as f64)),
                        ("replicas".into(), Json::Num(self.pool.replicas() as f64)),
                        (
                            "connections_accepted".into(),
                            Json::Num(shared.accepted.load(Ordering::Relaxed) as f64),
                        ),
                        (
                            "requests".into(),
                            Json::Num(shared.requests.load(Ordering::Relaxed) as f64),
                        ),
                        (
                            "failovers".into(),
                            Json::Num(shared.failovers.load(Ordering::Relaxed) as f64),
                        ),
                        (
                            "re_prepares".into(),
                            Json::Num(shared.re_prepares.load(Ordering::Relaxed) as f64),
                        ),
                        ("backends".into(), Json::Arr(backends)),
                    ]),
                ),
                (
                    "totals".into(),
                    Json::Obj(vec![
                        ("shard_requests".into(), Json::Num(shard_requests as f64)),
                        ("shard_documents".into(), Json::Num(shard_documents as f64)),
                    ]),
                ),
                ("shards".into(), Json::Arr(shards)),
            ]),
        )
    }
}

/// Clone `body` with `field` set to `value` (replacing any existing
/// entry) — the router rewrites `doc` and `handle` before forwarding.
fn with_field(body: &Json, field: &str, value: Json) -> Json {
    let mut entries: Vec<(String, Json)> = body
        .as_obj()
        .map(|o| o.iter().filter(|(k, _)| k != field).cloned().collect())
        .unwrap_or_default();
    entries.push((field.to_string(), value));
    Json::Obj(entries)
}

/// Serve one accepted client connection until the peer closes, a
/// protocol error occurs, or the router drains. Mirrors the single-node
/// handler: the in-flight response is always completed before close.
fn handle_connection(shared: &RouterShared, mut stream: TcpStream) {
    let mut core = ConnCore::new(Arc::clone(&shared.pool));
    let mut buf = Vec::new();
    loop {
        let req = match http::read_request(
            &mut stream,
            &mut buf,
            &|| shared.draining(),
            shared.config.max_body,
            shared.config.request_timeout,
        ) {
            Ok(req) => req,
            Err(ReadError::Closed) | Err(ReadError::Io(_)) => break,
            Err(ReadError::Bad(message)) => {
                let body = wire::protocol_error_body("bad_request", &message);
                let _ = http::write_response(&mut stream, 400, &body.to_string(), false);
                break;
            }
            Err(ReadError::TooLarge) => {
                let body = wire::protocol_error_body("too_large", "request exceeds size limits");
                let _ = http::write_response(&mut stream, 413, &body.to_string(), false);
                break;
            }
            Err(ReadError::Timeout) => {
                let body = wire::protocol_error_body("timeout", "request did not complete");
                let _ = http::write_response(&mut stream, 408, &body.to_string(), false);
                break;
            }
        };
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let (failovers, re_prepares) = (core.failovers, core.re_prepares);
        let (status, body) = route(shared, &mut core, &req);
        shared.failovers.fetch_add(core.failovers - failovers, Ordering::Relaxed);
        shared.re_prepares.fetch_add(core.re_prepares - re_prepares, Ordering::Relaxed);
        let keep = !req.close && !shared.draining();
        if http::write_response(&mut stream, status, &body.to_string(), keep).is_err() {
            break;
        }
        if !keep {
            break;
        }
    }
}

fn route(shared: &RouterShared, core: &mut ConnCore, req: &Request) -> (u16, Json) {
    // Path first, then method — same 405 discipline as the single-node
    // handler.
    let method = req.method.as_str();
    let wrong_method =
        || (405, wire::protocol_error_body("method_not_allowed", "wrong method for this path"));
    let with_body = |f: &mut dyn FnMut(&Json) -> (u16, Json)| match body_object(req) {
        Ok(body) => f(&body),
        Err(err) => err,
    };
    match req.path.as_str() {
        "/healthz" | "/" => match method {
            "GET" => (200, Json::Obj(vec![("ok".into(), Json::Bool(true))])),
            _ => wrong_method(),
        },
        "/query" => match method {
            "POST" => with_body(&mut |body| core.query(body)),
            _ => wrong_method(),
        },
        "/prepare" => match method {
            "POST" => with_body(&mut |body| core.prepare(body)),
            _ => wrong_method(),
        },
        "/execute" => match method {
            "POST" => with_body(&mut |body| core.execute(body)),
            _ => wrong_method(),
        },
        "/documents" => match method {
            "GET" => core.documents(),
            _ => wrong_method(),
        },
        "/stats" => match method {
            "GET" => core.stats(shared),
            _ => wrong_method(),
        },
        "/shutdown" => match method {
            "POST" => {
                shared.shutdown_requested.store(true, Ordering::SeqCst);
                (
                    200,
                    Json::Obj(vec![
                        ("ok".into(), Json::Bool(true)),
                        ("draining".into(), Json::Bool(true)),
                    ]),
                )
            }
            _ => wrong_method(),
        },
        path if path.strip_prefix("/documents/").is_some_and(|id| !id.is_empty()) => {
            let id = path.strip_prefix("/documents/").expect("guard matched");
            match method {
                "PUT" => with_body(&mut |body| core.upload(id, body)),
                _ => wrong_method(),
            }
        }
        path => (404, wire::protocol_error_body("not_found", &format!("no route for `{path}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Catalog;
    use crate::server::{Server, ServerConfig};
    use mhx_goddag::GoddagBuilder;
    use std::io::{Read, Write};
    use std::net::TcpListener;
    use std::sync::atomic::AtomicUsize;

    const DRAIN_BODY: &str =
        r#"{"ok":false,"error":{"kind":"shutting_down","message":"draining"}}"#;
    const NOT_FOUND_BODY: &str =
        r#"{"ok":false,"error":{"kind":"unknown_document","message":"no document `ms`"}}"#;

    /// A canned-response backend: answers every request on every
    /// connection with `status` + `body`, counting requests served.
    fn mock_backend(status: u16, body: &'static str) -> (String, Arc<AtomicUsize>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let hits = Arc::new(AtomicUsize::new(0));
        let shared_hits = Arc::clone(&hits);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut s) = stream else { continue };
                let hits = Arc::clone(&shared_hits);
                std::thread::spawn(move || {
                    let mut buf = Vec::new();
                    let mut chunk = [0u8; 4096];
                    loop {
                        // Read one Content-Length-framed request.
                        let end = loop {
                            if let Some(he) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                                let head = String::from_utf8_lossy(&buf[..he]).to_string();
                                let len = head
                                    .lines()
                                    .filter_map(|l| {
                                        l.to_ascii_lowercase()
                                            .strip_prefix("content-length:")
                                            .and_then(|v| v.trim().parse::<usize>().ok())
                                    })
                                    .next()
                                    .unwrap_or(0);
                                if buf.len() >= he + 4 + len {
                                    break he + 4 + len;
                                }
                            }
                            match s.read(&mut chunk) {
                                Ok(0) => return,
                                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                                Err(_) => return,
                            }
                        };
                        buf.drain(..end);
                        hits.fetch_add(1, Ordering::SeqCst);
                        let resp = format!(
                            "HTTP/1.1 {status} X\r\nContent-Type: application/json\r\n\
                             Content-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
                            body.len()
                        );
                        if s.write_all(resp.as_bytes()).is_err() {
                            return;
                        }
                    }
                });
            }
        });
        (addr, hits)
    }

    fn error_kind_of(json: &Json) -> &str {
        json.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str).unwrap_or("")
    }

    fn query_body(doc: &str) -> Json {
        mhx_json::parse(&format!(
            r#"{{"doc":"{doc}","lang":"xpath","query":"count(/descendant::w)"}}"#
        ))
        .unwrap()
    }

    #[test]
    fn a_drain_signal_retries_each_replica_exactly_once_then_502s() {
        let (a, hits_a) = mock_backend(503, DRAIN_BODY);
        let (b, hits_b) = mock_backend(503, DRAIN_BODY);
        let pool = Arc::new(BackendPool::new(vec![a, b], 2));
        let mut core = ConnCore::new(Arc::clone(&pool));
        let (status, json) = core.query(&query_body("ms"));
        assert_eq!(status, 502);
        assert_eq!(error_kind_of(&json), wire::BAD_GATEWAY_KIND);
        assert_eq!(hits_a.load(Ordering::SeqCst), 1, "each replica tried exactly once");
        assert_eq!(hits_b.load(Ordering::SeqCst), 1, "each replica tried exactly once");
        assert_eq!(core.failovers, 1, "one retry beyond the first attempt");
        let health = pool.health_snapshot();
        assert!(health.iter().all(|h| h.draining && !h.healthy), "both marked draining");
    }

    #[test]
    fn a_non_retryable_4xx_surfaces_immediately_without_failover() {
        let (a, hits_a) = mock_backend(404, NOT_FOUND_BODY);
        let (b, hits_b) = mock_backend(404, NOT_FOUND_BODY);
        let pool = Arc::new(BackendPool::new(vec![a, b], 2));
        // Which mock leads the replica set is hash-determined — read it
        // off the pool instead of assuming (the first read uses the
        // cursor's initial rotation, i.e. the unrotated set).
        let first = pool.replica_set("ms")[0];
        let mut core = ConnCore::new(Arc::clone(&pool));
        let (status, json) = core.query(&query_body("ms"));
        assert_eq!(status, 404);
        assert_eq!(error_kind_of(&json), "unknown_document");
        let (h_first, h_other) = if first == 0 { (&hits_a, &hits_b) } else { (&hits_b, &hits_a) };
        assert_eq!(h_first.load(Ordering::SeqCst), 1, "only the first replica is asked");
        assert_eq!(h_other.load(Ordering::SeqCst), 0, "a 4xx never fails over");
        assert_eq!(core.failovers, 0);
    }

    fn live_shard(docs: &[&str]) -> Server {
        let catalog = Arc::new(Catalog::new());
        for id in docs {
            catalog.insert(
                *id,
                GoddagBuilder::new().hierarchy("w", "<r><w>a</w><w>b</w></r>").build().unwrap(),
            );
        }
        Server::bind(
            catalog,
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                poll_interval: Duration::from_millis(5),
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn prepared_handles_re_prepare_transparently_after_failover() {
        let mut shards = vec![Some(live_shard(&["ms"])), Some(live_shard(&["ms"]))];
        let addrs: Vec<String> =
            shards.iter().map(|s| s.as_ref().unwrap().addr().to_string()).collect();
        let pool = Arc::new(BackendPool::new(addrs, 2));
        let mut core = ConnCore::new(Arc::clone(&pool));

        let prep = mhx_json::parse(r#"{"lang":"xpath","query":"count(/descendant::w)"}"#).unwrap();
        let (status, json) = core.prepare(&prep);
        assert_eq!(status, 200, "{json}");
        assert_eq!(json.get("handle").and_then(Json::as_u64), Some(0), "router handle space");

        // Kill the one backend holding the compiled statement before any
        // execute: every execute path must now transparently re-prepare
        // on the surviving replica.
        let owner = core.prepared[0].per_backend.iter().position(Option::is_some).unwrap();
        assert_eq!(core.re_prepares, 0, "the eager prepare is not a re-prepare");
        shards[owner].take().unwrap().shutdown();

        let exec = mhx_json::parse(r#"{"handle":0,"doc":"ms"}"#).unwrap();
        let (status, json) = core.execute(&exec);
        assert_eq!(status, 200, "{json}");
        assert_eq!(json.get("serialized").and_then(Json::as_str), Some("2"));
        assert!(core.re_prepares >= 1, "the statement was re-prepared after failover");

        // And the re-prepared handle is cached: a second execute reuses it.
        let re_prepares = core.re_prepares;
        let (status, json) = core.execute(&exec);
        assert_eq!(status, 200, "{json}");
        assert_eq!(json.get("serialized").and_then(Json::as_str), Some("2"));
        assert_eq!(core.re_prepares, re_prepares, "handle cached on the survivor");

        for s in shards.into_iter().flatten() {
            s.shutdown();
        }
    }

    #[test]
    fn uploads_replicate_to_k_shards_and_documents_merge() {
        let shards = [live_shard(&[]), live_shard(&[])];
        let addrs: Vec<String> = shards.iter().map(|s| s.addr().to_string()).collect();
        let pool = Arc::new(BackendPool::new(addrs, 2));
        let mut core = ConnCore::new(Arc::clone(&pool));

        let upload =
            mhx_json::parse(r#"{"hierarchies":[{"name":"w","xml":"<r><w>a</w><w>b</w></r>"}]}"#)
                .unwrap();
        let (status, json) = core.upload("novel", &upload);
        assert_eq!(status, 200, "{json}");
        assert_eq!(json.get("replicas").and_then(Json::as_u64), Some(2));
        for shard in &shards {
            assert!(
                shard.catalog().document_ids().contains(&"novel".to_string()),
                "every shard holds its replica"
            );
        }
        let (status, json) = core.documents();
        assert_eq!(status, 200);
        let ids = json.get("documents").and_then(Json::as_arr).unwrap();
        assert_eq!(ids.len(), 1, "replicas merge to one id: {json}");

        let (status, json) = core.query(&query_body("novel"));
        assert_eq!(status, 200, "{json}");
        assert_eq!(json.get("serialized").and_then(Json::as_str), Some("2"));

        for s in shards {
            s.shutdown();
        }
    }
}
