//! The JSON wire format: request payloads, response payloads, and the
//! [`EngineError`] → HTTP status mapping.
//!
//! Every response body is a JSON object with an `"ok"` discriminator:
//!
//! ```text
//! {"ok": true,  "lang": "xpath", "kind": "nodes", "count": 2,
//!  "serialized": "<w>a</w><w>b</w>"}
//! {"ok": false, "error": {"kind": "parse", "lang": "xquery",
//!  "message": "expected `return`", "at": 7}}
//! ```
//!
//! The error `kind` is the engine's pipeline stage — the same typed
//! information [`EngineError`] carries — so clients can branch without
//! string-matching messages, and the HTTP status is derived from it
//! ([`status_for`]). Protocol-level failures (bad JSON, unknown route,
//! missing field) reuse the same error envelope with their own kinds.

use crate::engine::{EngineError, QueryLang, QueryOutcome, QueryValue};
use mhx_json::Json;
use mhx_xquery::{AnalyzeMode, EvalOptions};

/// Map an engine error onto the HTTP status the wire protocol uses.
///
/// * `Parse` / `Compile` — the request text can never succeed: **400**;
/// * `Eval` — valid query, failed against this document: **422**;
/// * `UnknownDocument` — the addressed resource does not exist: **404**;
/// * `Document` — the uploaded document is malformed: **400**;
/// * `ShuttingDown` — the catalog is draining: **503** (retry elsewhere);
/// * `Store` — the persistence layer failed server-side: **500**.
pub fn status_for(e: &EngineError) -> u16 {
    match e {
        EngineError::Parse { .. } | EngineError::Compile { .. } => 400,
        EngineError::Eval { .. } => 422,
        EngineError::UnknownDocument { .. } => 404,
        EngineError::Document { .. } => 400,
        EngineError::ShuttingDown => 503,
        EngineError::Store { .. } => 500,
    }
}

/// Stable wire name for an engine error's stage.
pub fn error_kind(e: &EngineError) -> &'static str {
    match e {
        EngineError::Parse { .. } => "parse",
        EngineError::Compile { .. } => "compile",
        EngineError::Eval { .. } => "eval",
        EngineError::UnknownDocument { .. } => "unknown_document",
        EngineError::Document { .. } => "document",
        EngineError::ShuttingDown => "shutting_down",
        EngineError::Store { .. } => "store",
    }
}

/// The error envelope for an engine failure.
pub(crate) fn engine_error_body(e: &EngineError) -> Json {
    let mut error = vec![
        ("kind".to_string(), Json::Str(error_kind(e).into())),
        ("message".to_string(), Json::Str(e.to_string())),
    ];
    if let Some(lang) = e.lang() {
        error.push(("lang".into(), Json::Str(lang.name().into())));
    }
    if let EngineError::Parse { at: Some(at), .. } = e {
        error.push(("at".into(), Json::Num(*at as f64)));
    }
    Json::Obj(vec![("ok".into(), Json::Bool(false)), ("error".into(), Json::Obj(error))])
}

/// Wire error kind the shard router uses when a request exhausted every
/// replica of its document: distinct from `shutting_down` (one node
/// refusing while it drains, worth retrying elsewhere) — `bad_gateway`
/// means the routing tier already tried everywhere. Mapped to **502**.
pub const BAD_GATEWAY_KIND: &str = "bad_gateway";

/// The error envelope the router sends when every replica was
/// unreachable or draining (status 502, kind [`BAD_GATEWAY_KIND`]).
pub(crate) fn bad_gateway_body(message: &str) -> Json {
    protocol_error_body(BAD_GATEWAY_KIND, message)
}

/// True when a response is the engine's typed drain signal (`503` +
/// `shutting_down`): a replica-aware caller should retry another
/// backend, not surface the error.
pub fn is_drain_envelope(status: u16, body: &Json) -> bool {
    status == 503
        && body.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str)
            == Some("shutting_down")
}

/// The error envelope for a protocol-level failure (bad JSON, missing
/// field, unknown route…).
pub(crate) fn protocol_error_body(kind: &str, message: &str) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        (
            "error".into(),
            Json::Obj(vec![
                ("kind".into(), Json::Str(kind.into())),
                ("message".into(), Json::Str(message.into())),
            ]),
        ),
    ])
}

/// Serialize a [`QueryOutcome`] into the success envelope.
pub(crate) fn outcome_body(out: &QueryOutcome) -> Json {
    let mut entries = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("lang".to_string(), Json::Str(out.lang().name().into())),
    ];
    let kind = match out.value() {
        QueryValue::Nodes(ns) => {
            entries.push(("count".into(), Json::Num(ns.len() as f64)));
            "nodes"
        }
        QueryValue::Str(_) => "string",
        QueryValue::Num(n) => {
            entries.push(("value".into(), Json::Num(*n)));
            "number"
        }
        QueryValue::Bool(b) => {
            entries.push(("value".into(), Json::Bool(*b)));
            "boolean"
        }
        QueryValue::Markup(_) => "markup",
    };
    entries.insert(2, ("kind".into(), Json::Str(kind.into())));
    entries.push(("serialized".into(), Json::Str(out.serialize().into())));
    Json::Obj(entries)
}

/// The success envelope for a `/query` request with `"explain": true`:
/// the rendered plan instead of a result.
pub(crate) fn explain_body(lang: QueryLang, text: &str) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(true)),
        ("lang".into(), Json::Str(lang.name().into())),
        ("kind".into(), Json::Str("explain".into())),
        ("explain".into(), Json::Str(text.into())),
    ])
}

/// Parse a wire language name.
pub fn parse_lang(name: &str) -> Option<QueryLang> {
    match name {
        "xpath" => Some(QueryLang::XPath),
        "xquery" => Some(QueryLang::XQuery),
        _ => None,
    }
}

/// Apply a request's `"options"` object onto per-connection
/// [`EvalOptions`]. Strict: unknown keys or mistyped values are protocol
/// errors, so typos never silently keep the defaults.
pub(crate) fn apply_options(opts: &mut EvalOptions, json: &Json) -> Result<(), String> {
    let entries = json.as_obj().ok_or("`options` must be an object")?;
    for (key, value) in entries {
        match key.as_str() {
            "optimize" => {
                opts.optimize = value.as_bool().ok_or("`options.optimize` must be a boolean")?;
            }
            "space_separator" => {
                opts.space_separator =
                    value.as_bool().ok_or("`options.space_separator` must be a boolean")?;
            }
            "analyze_mode" => {
                opts.analyze_mode =
                    match value.as_str().ok_or("`options.analyze_mode` must be a string")? {
                        "paper" => AnalyzeMode::PaperCompat,
                        "xslt" => AnalyzeMode::Xslt,
                        other => {
                            return Err(format!(
                                "unknown analyze_mode `{other}` (expected `paper` or `xslt`)"
                            ));
                        }
                    };
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(())
}

/// Render [`EvalOptions`] as the full wire `"options"` object —
/// the inverse of [`apply_options`]. The router injects this into every
/// forwarded `/query` and `/execute` so that pooled backend sessions
/// (shared across router clients) behave deterministically per request.
pub(crate) fn options_json(opts: &EvalOptions) -> Json {
    Json::Obj(vec![
        ("optimize".into(), Json::Bool(opts.optimize)),
        ("space_separator".into(), Json::Bool(opts.space_separator)),
        (
            "analyze_mode".into(),
            Json::Str(
                match opts.analyze_mode {
                    AnalyzeMode::PaperCompat => "paper",
                    AnalyzeMode::Xslt => "xslt",
                }
                .into(),
            ),
        ),
    ])
}

/// Client-side view of a query response (the success envelope `/query`
/// and `/execute` return).
#[derive(Debug, Clone, PartialEq)]
pub struct WireOutcome {
    /// `xpath` or `xquery`.
    pub lang: String,
    /// `nodes`, `string`, `number`, `boolean`, or `markup`.
    pub kind: String,
    /// The paper-style serialized form.
    pub serialized: String,
    /// Node count, for `nodes` outcomes.
    pub count: Option<u64>,
    /// The atomic value, for `number` outcomes.
    pub num: Option<f64>,
    /// The atomic value, for `boolean` outcomes.
    pub boolean: Option<bool>,
}

impl WireOutcome {
    pub(crate) fn from_json(body: &Json) -> Result<WireOutcome, String> {
        let field = |name: &str| {
            body.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("response missing `{name}`"))
        };
        Ok(WireOutcome {
            lang: field("lang")?,
            kind: field("kind")?,
            serialized: field("serialized")?,
            count: body.get("count").and_then(Json::as_u64),
            num: body.get("value").and_then(Json::as_f64),
            boolean: body.get("value").and_then(Json::as_bool),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn status_mapping_covers_every_stage() {
        let cases = [
            (
                EngineError::Parse { lang: QueryLang::XPath, message: "x".into(), at: Some(3) },
                400,
                "parse",
            ),
            (EngineError::Compile { lang: QueryLang::XQuery, message: "x".into() }, 400, "compile"),
            (EngineError::Eval { lang: QueryLang::XQuery, message: "x".into() }, 422, "eval"),
            (EngineError::UnknownDocument { id: "ms".into() }, 404, "unknown_document"),
            (EngineError::Document { message: "x".into() }, 400, "document"),
            (EngineError::ShuttingDown, 503, "shutting_down"),
            (EngineError::Store { message: "x".into() }, 500, "store"),
        ];
        for (e, status, kind) in cases {
            assert_eq!(status_for(&e), status, "{e:?}");
            assert_eq!(error_kind(&e), kind, "{e:?}");
            let body = engine_error_body(&e);
            assert_eq!(body.get("ok").and_then(Json::as_bool), Some(false));
            let err = body.get("error").unwrap();
            assert_eq!(err.get("kind").and_then(Json::as_str), Some(kind));
        }
        // The parse error's byte offset rides along.
        let e = EngineError::Parse { lang: QueryLang::XPath, message: "x".into(), at: Some(3) };
        let body = engine_error_body(&e);
        assert_eq!(body.get("error").unwrap().get("at").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn bad_gateway_is_distinct_from_the_drain_signal() {
        let body = bad_gateway_body("all replicas unavailable");
        assert_eq!(body.get("ok").and_then(Json::as_bool), Some(false));
        let err = body.get("error").unwrap();
        assert_eq!(err.get("kind").and_then(Json::as_str), Some(BAD_GATEWAY_KIND));
        // A 502 envelope is NOT the retry-elsewhere drain signal…
        assert!(!is_drain_envelope(502, &body));
        // …and neither is a 503 status with a different kind.
        assert!(!is_drain_envelope(503, &body));
        let drain = engine_error_body(&EngineError::ShuttingDown);
        assert!(is_drain_envelope(503, &drain));
        assert!(!is_drain_envelope(200, &drain));
    }

    #[test]
    fn outcomes_round_trip_through_the_envelope() {
        let catalog = Catalog::new();
        catalog.insert(
            "ms",
            GoddagBuilder::new().hierarchy("w", "<r><w>a</w><w>b</w></r>").build().unwrap(),
        );
        let nodes = catalog.xpath("ms", "/descendant::w").unwrap();
        let body = outcome_body(&nodes);
        let wire = WireOutcome::from_json(&body).unwrap();
        assert_eq!(wire.kind, "nodes");
        assert_eq!(wire.count, Some(2));
        assert_eq!(wire.serialized, "<w>a</w><w>b</w>");

        let n = catalog.xquery("ms", "count(/descendant::w)").unwrap();
        let wire = WireOutcome::from_json(&outcome_body(&n)).unwrap();
        assert_eq!(wire.kind, "markup");
        assert_eq!(wire.serialized, "2");

        let b = catalog.xpath("ms", "count(/descendant::w) > 1").unwrap();
        let wire = WireOutcome::from_json(&outcome_body(&b)).unwrap();
        assert_eq!(wire.kind, "boolean");
        assert_eq!(wire.boolean, Some(true));
    }

    #[test]
    fn options_apply_strictly() {
        let mut opts = EvalOptions::default();
        let patch = mhx_json::parse(
            r#"{"optimize": false, "analyze_mode": "xslt", "space_separator": true}"#,
        )
        .unwrap();
        apply_options(&mut opts, &patch).unwrap();
        assert!(!opts.optimize);
        assert!(opts.space_separator);
        assert_eq!(opts.analyze_mode, mhx_xquery::AnalyzeMode::Xslt);

        for bad in [
            r#"{"optimise": true}"#,
            r#"{"optimize": "yes"}"#,
            r#"{"analyze_mode": "sgml"}"#,
            r#"[1]"#,
        ] {
            let patch = mhx_json::parse(bad).unwrap();
            assert!(apply_options(&mut opts, &patch).is_err(), "{bad}");
        }
    }

    #[test]
    fn options_render_and_reapply_losslessly() {
        for (optimize, space, mode) in [
            (true, false, mhx_xquery::AnalyzeMode::PaperCompat),
            (false, true, mhx_xquery::AnalyzeMode::Xslt),
        ] {
            let opts = EvalOptions { optimize, space_separator: space, analyze_mode: mode };
            let rendered = options_json(&opts);
            let mut back = EvalOptions::default();
            apply_options(&mut back, &rendered).unwrap();
            assert_eq!(back.optimize, optimize);
            assert_eq!(back.space_separator, space);
            assert_eq!(back.analyze_mode, mode);
        }
    }
}
