//! Integration: analyze-string under composition — multiple temporary
//! hierarchies in one query, fragment-pattern groups, cross-hierarchy
//! relations of match markup, and lifecycle guarantees.

use multihier_xquery::corpus::figure1;
use multihier_xquery::prelude::*;

#[test]
fn two_analyze_strings_in_one_query() {
    // Two temp hierarchies coexist (rest + rest2) and can be related to
    // each other with extended axes: 'ga' (24..26) overlaps... is inside
    // 'singal' (24..30)? ga ⊂ singal → xancestor, while 'allice' (28..34)
    // properly overlaps 'singal'.
    let g = figure1::goddag();
    let out = run_query(
        &g,
        "let $a := analyze-string(root(), 'singal') \
         let $b := analyze-string(root(), 'allice') \
         return ( \
           count($a/child::m), ' ', count($b/child::m), ' ', \
           count($b/child::m/overlapping::m), ' ', \
           string-join(hierarchies(), ','))",
    )
    .unwrap();
    assert_eq!(out, "1 1 1 lines,words,restorations,damage,rest,rest2");
    // Both are gone afterwards.
    assert_eq!(g.hierarchy_count(), 4);
}

#[test]
fn fragment_pattern_groups_are_queryable() {
    // Groups from an XML-fragment pattern become real (temporary) markup:
    // query them with ordinary axes.
    let g = figure1::goddag();
    let out = run_query(
        &g,
        "let $r := analyze-string(root(), 'si<first>n</first>gal<second>lice</second>') \
         return ( \
           string($r/descendant::first), '/', \
           string($r/descendant::second), '/', \
           count($r/descendant::first/xfollowing::second))",
    )
    .unwrap();
    assert_eq!(out, "n/lice/1");
}

#[test]
fn match_markup_relates_to_all_base_hierarchies() {
    // The paper's core pitch: a text hit crossing markup boundaries can be
    // located in every hierarchy at once.
    let g = figure1::goddag();
    let out = run_query(
        &g,
        "let $r := analyze-string(root(), 'una.*?sin') \
         for $m in $r/child::m return ( \
           'lines=', count($m/overlapping::line | $m/xancestor::line | $m/xdescendant::line), \
           ' words=', count($m/overlapping::w | $m/xancestor::w | $m/xdescendant::w), \
           ' dmg=', count($m/overlapping::dmg | $m/xancestor::dmg | $m/xdescendant::dmg))",
    )
    .unwrap();
    // "unawendendne sin" = 11..27: inside line1 (xancestor), covers words
    // unawendendne (11..23) as xdescendant plus overlaps singallice? span
    // 24..34 vs 11..27 → proper overlap; word "sibbe" no. dmg1 "w" inside.
    assert_eq!(out, "lines=1 words=2 dmg=1");
}

#[test]
fn analyze_string_on_a_leaf() {
    // Definition 4 takes any node; a leaf works too. Note the documented
    // leaf-identity rule: a leaf id is its start offset, so after the
    // temporary hierarchy splits "endendne" at the match boundaries, the
    // *same* binding `$leaf` denotes the now-shorter leaf "end" — capture
    // the string before the call if you need the original.
    let g = figure1::goddag();
    let out = run_query(
        &g,
        "let $leaf := (/descendant::leaf())[5] \
         let $before := string($leaf) \
         let $r := analyze-string($leaf, 'end') \
         return concat($before, '/', string($leaf), ':', count($r/child::m))",
    )
    .unwrap();
    assert_eq!(out, "endendne/end:2");
}

#[test]
fn empty_matches_are_skipped() {
    let g = figure1::goddag();
    let out = run_query(
        &g,
        "let $r := analyze-string((/descendant::w)[1], 'x*') \
         return count($r/child::m)",
    )
    .unwrap();
    assert_eq!(out, "0", "zero-width matches produce no <m> markup");
}

#[test]
fn paper_iii1_match_vs_restoration_boundaries() {
    // The III.1 mechanics in isolation: the match 'unawe' (11..16) and the
    // restoration 'gesceaftum una' (0..14) properly overlap, so neither
    // contains the other — the per-leaf loop is genuinely needed.
    let g = figure1::goddag();
    let out = run_query(
        &g,
        "let $r := analyze-string((/descendant::w)[2], 'unawe') \
         for $m in $r/child::m return ( \
           count($m/xancestor::res(\"restorations\")), ' ', \
           count($m/overlapping::res(\"restorations\")), ' ', \
           string-join(for $l in $m/descendant::leaf() return string($l), '|'))",
    )
    .unwrap();
    assert_eq!(out, "0 1 una|w|e");
}

#[test]
fn deeply_nested_fragment_pattern() {
    let g = figure1::goddag();
    let out = run_query(
        &g,
        "let $r := analyze-string(root(), 'g<a>e<b>sc</b>ea</a>f') \
         return serialize($r/child::m)",
    )
    .unwrap();
    assert_eq!(out, "<m>g<a>e<b>sc</b>ea</a>f</m>");
}

#[test]
fn analyze_string_respects_node_scope() {
    // Matches outside the argument node's span are not tagged.
    let g = figure1::goddag();
    let out = run_query(
        &g,
        "let $r := analyze-string((/descendant::line)[1], 'ge') \
         return count($r/child::m)",
    )
    .unwrap();
    // line1 = "gesceaftum unawendendne sin": only the leading "ge"
    // ("gecynde" is in line2).
    assert_eq!(out, "1");
}
