//! Differential property suite for the structural index: on random
//! multihierarchical documents (including virtual hierarchies, both
//! spec-built and `analyze-string()`-built), index-backed axis evaluation
//! must equal the naive `all_nodes()` scan for every axis, the compiled
//! XPath pipeline must equal the naive interpreter on random extended
//! paths, and batched step resolution must equal the per-node union on
//! random context sets for every axis × node-test pair. The naive side is
//! the reference oracle the tentpole refactor promised to keep.

use multihier_xquery::corpus::{generate, GeneratorConfig};
use multihier_xquery::goddag::axes::{axis_nodes, setsem, Axis};
use multihier_xquery::goddag::{FragmentSpec, Goddag, NodeId, StructIndex};
use multihier_xquery::xpath::eval::evaluate_xpath_naive;
use multihier_xquery::xpath::{
    choose_strategy, evaluate_xpath, resolve_step, resolve_step_batch, NodeTest, Value,
};
use proptest::prelude::*;

const ALL_AXES: [Axis; 19] = [
    Axis::Child,
    Axis::Descendant,
    Axis::DescendantOrSelf,
    Axis::Parent,
    Axis::Ancestor,
    Axis::AncestorOrSelf,
    Axis::Following,
    Axis::Preceding,
    Axis::FollowingSibling,
    Axis::PrecedingSibling,
    Axis::SelfAxis,
    Axis::Attribute,
    Axis::XAncestor,
    Axis::XDescendant,
    Axis::XFollowing,
    Axis::XPreceding,
    Axis::PrecedingOverlapping,
    Axis::FollowingOverlapping,
    Axis::Overlapping,
];

const EXTENDED: [Axis; 7] = [
    Axis::XAncestor,
    Axis::XDescendant,
    Axis::XFollowing,
    Axis::XPreceding,
    Axis::PrecedingOverlapping,
    Axis::FollowingOverlapping,
    Axis::Overlapping,
];

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        0u32..1000,
        (60usize..240),
        (1usize..4),
        (5usize..25),
        (0usize..=10),
        prop_oneof![Just(true), Just(false)],
    )
        .prop_map(|(seed, text_len, hierarchies, avg_element_len, jitter, nested)| {
            GeneratorConfig {
                seed: seed as u64,
                text_len,
                hierarchies,
                avg_element_len,
                boundary_jitter: jitter as f64 / 10.0,
                nested,
            }
        })
}

/// Random documents, optionally with a virtual hierarchy layered on top.
fn arb_goddag() -> impl Strategy<Value = Goddag> {
    (arb_config(), 0usize..=2, 1usize..12).prop_map(|(cfg, virtuals, cut)| {
        let mut g = generate(&cfg).build_goddag();
        for v in 0..virtuals {
            let len = g.text().len() as u32;
            let mid = char_boundary(g.text(), (cut as u32 * (v as u32 + 1)).min(len));
            let frag = FragmentSpec::new("res", (0, len)).child(FragmentSpec::new("m", (0, mid)));
            let name = g.fresh_virtual_name();
            g.add_virtual_hierarchy(&name, &[frag]).expect("spans are char-aligned");
        }
        g
    })
}

fn char_boundary(s: &str, mut b: u32) -> u32 {
    while b > 0 && !s.is_char_boundary(b as usize) {
        b -= 1;
    }
    b
}

fn assert_index_matches_scan(g: &Goddag) {
    let idx = StructIndex::build(g);
    for &n in &g.all_nodes() {
        for axis in ALL_AXES {
            let fast = idx.axis_nodes(g, axis, n);
            let slow = axis_nodes(g, axis, n);
            assert_eq!(fast, slow, "axis {} from {}", axis.name(), n);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Index-backed evaluation equals the naive scan for all axes on
    /// random documents with virtual hierarchies.
    #[test]
    fn index_equals_scan_on_random_docs(g in arb_goddag()) {
        assert_index_matches_scan(&g);
    }

    /// And both equal the literal Definition-1 set semantics for the
    /// extended axes (three-way agreement).
    #[test]
    fn index_equals_set_semantics(cfg in arb_config()) {
        let g = generate(&cfg).build_goddag();
        let idx = StructIndex::build(&g);
        // Set semantics is O(N²) per node; sample every third node.
        for (i, &n) in g.all_nodes().iter().enumerate() {
            if i % 3 != 0 {
                continue;
            }
            for axis in EXTENDED {
                prop_assert_eq!(
                    idx.axis_nodes(&g, axis, n),
                    setsem::axis_nodes_setsem(&g, axis, n),
                    "axis {} from {}", axis.name(), n
                );
            }
        }
    }

    /// Batched step resolution equals the per-node union — sorted, deduped
    /// — on random context sets, for every axis × node test. This is the
    /// contract the evaluators rely on when they switch predicate-free
    /// steps to `resolve_step_batch`.
    #[test]
    fn batch_step_equals_per_node_union(cfg in arb_config(), mask_lo in 0u32..u32::MAX, mask_hi in 0u32..u32::MAX, shift in 0usize..64) {
        let mask = (mask_hi as u64) << 32 | mask_lo as u64;
        let g = generate(&cfg).build_goddag();
        let idx = StructIndex::build(&g);
        // A pseudo-random document-ordered context subset from the mask
        // bits (rotated so every region of the document gets picked).
        let ctxs: Vec<NodeId> = g
            .all_nodes()
            .into_iter()
            .enumerate()
            .filter(|(i, _)| mask >> ((i + shift) % 64) & 1 == 1)
            .map(|(_, n)| n)
            .collect();
        let tests = [
            NodeTest::Name { name: "e0".into(), hierarchies: None },
            NodeTest::Name { name: "s0".into(), hierarchies: None },
            NodeTest::AnyElement { hierarchies: None },
            NodeTest::AnyNode { hierarchies: None },
            NodeTest::Text { hierarchies: None },
            NodeTest::Leaf,
        ];
        for axis in ALL_AXES {
            for test in &tests {
                let strategy = choose_strategy(axis, test);
                let batch = resolve_step_batch(&g, &idx, strategy, axis, test, &ctxs);
                let mut union: Vec<NodeId> = ctxs
                    .iter()
                    .flat_map(|&n| resolve_step(&g, &idx, strategy, axis, test, n))
                    .collect();
                g.sort_nodes(&mut union);
                union.dedup();
                prop_assert_eq!(
                    batch, union,
                    "axis {} test {:?} over {} contexts", axis.name(), test, ctxs.len()
                );
            }
        }
    }

    /// The compiled pipeline and the naive interpreter agree on random
    /// extended paths.
    #[test]
    fn compiled_xpath_equals_naive(cfg in arb_config(), steps in arb_path()) {
        let g = generate(&cfg).build_goddag();
        let fast = evaluate_xpath(&g, &steps).unwrap();
        let slow = evaluate_xpath_naive(&g, &steps).unwrap();
        prop_assert_eq!(&fast, &slow, "compiled vs naive on `{}`", steps);
        if let Value::Nodes(ns) = &fast {
            for w in ns.windows(2) {
                prop_assert_eq!(g.cmp_order(w[0], w[1]), std::cmp::Ordering::Less);
            }
        }
    }
}

fn arb_path() -> impl Strategy<Value = String> {
    let axis = prop_oneof![
        Just("child"),
        Just("descendant"),
        Just("descendant-or-self"),
        Just("parent"),
        Just("ancestor"),
        Just("following"),
        Just("preceding"),
        Just("xancestor"),
        Just("xdescendant"),
        Just("xfollowing"),
        Just("xpreceding"),
        Just("overlapping"),
        Just("preceding-overlapping"),
        Just("following-overlapping"),
    ];
    // The generator names elements e0/e1/… per hierarchy (n0/… nested).
    let test = prop_oneof![
        Just("e0".to_string()),
        Just("e1".to_string()),
        Just("n0".to_string()),
        Just("*".to_string()),
        Just("node()".to_string()),
        Just("text()".to_string()),
        Just("leaf()".to_string()),
    ];
    let step = (axis, test).prop_map(|(a, t)| format!("{a}::{t}"));
    proptest::collection::vec(step, 1..4).prop_map(|steps| format!("/{}", steps.join("/")))
}

/// The `analyze-string()` path: temporary hierarchies built by the XQuery
/// layer must also index identically mid-query. This exercises the version
/// counter through the copy-on-write evaluator.
#[test]
fn index_matches_scan_after_analyze_string_style_mutation() {
    let doc = generate(&GeneratorConfig {
        text_len: 300,
        hierarchies: 3,
        boundary_jitter: 0.8,
        ..Default::default()
    });
    let mut g = doc.build_goddag();
    // Simulate what analyze-string() does: install match fragments as a
    // virtual hierarchy, query, remove, query again.
    let text_len = g.text().len() as u32;
    let frag = FragmentSpec::new("matches", (0, text_len))
        .child(FragmentSpec::new("m", (0, char_boundary(g.text(), 7))))
        .child(FragmentSpec::new("m", (char_boundary(g.text(), 20), char_boundary(g.text(), 31))));
    g.add_virtual_hierarchy("rest", &[frag]).unwrap();
    assert_index_matches_scan(&g);
    g.remove_last_hierarchy().unwrap();
    assert_index_matches_scan(&g);
}

/// Generator element names really are e0/e1/…, so the name-indexed path is
/// exercised (not vacuously matching nothing).
#[test]
fn name_index_paths_are_nonempty() {
    let g = generate(&GeneratorConfig::default()).build_goddag();
    let Value::Nodes(ns) = evaluate_xpath(&g, "/descendant::e0").unwrap() else { panic!() };
    assert!(!ns.is_empty(), "descendant::e0 finds the first hierarchy's elements");
    let Value::Nodes(all) = evaluate_xpath(&g, "/descendant::leaf()").unwrap() else { panic!() };
    assert_eq!(all.len(), g.leaf_count());
}
