//! Integration tests for the multi-document serving facade: the shared
//! plan cache across documents, concurrent `&self` queries, typed errors,
//! and the unified result type.

use multihier_xquery::prelude::*;
use std::thread;

/// A tiny manuscript: one base text, lines + words hierarchies, with the
/// line break placed so that exactly one word straddles it.
fn manuscript(line_break_word: usize) -> Goddag {
    let words = ["gesceaftum", "unawendendne", "singallice", "sibbe", "gecynde"];
    let text = words.join(" ");
    let breaks: Vec<usize> = {
        // Byte offset into the middle of the chosen word.
        let start: usize = words[..line_break_word].iter().map(|w| w.len() + 1).sum();
        vec![start + words[line_break_word].len() / 2]
    };
    let lines =
        format!("<r><line>{}</line><line>{}</line></r>", &text[..breaks[0]], &text[breaks[0]..]);
    let word_markup: String =
        words.iter().map(|w| format!("<w>{w}</w>")).collect::<Vec<_>>().join(" ");
    GoddagBuilder::new()
        .hierarchy("lines", lines)
        .hierarchy("words", format!("<r>{word_markup}</r>"))
        .build()
        .unwrap()
}

fn corpus(n: usize) -> Catalog {
    let catalog = Catalog::new();
    for i in 0..n {
        catalog.insert(format!("ms-{i}"), manuscript(i % 4));
    }
    catalog
}

#[test]
fn catalog_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Catalog>();
    assert_send_sync::<Engine>();
    assert_send_sync::<QueryOutcome>();
    assert_send_sync::<EngineError>();
    assert_send_sync::<Prepared>();
}

#[test]
fn one_compilation_serves_every_document() {
    let catalog = corpus(4);
    let q = "for $w in /descendant::w[overlapping::line] return string($w)";
    let answers: Vec<String> =
        (0..4).map(|i| catalog.xquery(&format!("ms-{i}"), q).unwrap().into_string()).collect();
    // Each manuscript breaks a different word, so the answers differ —
    // same plan, genuinely different documents.
    assert_eq!(answers, ["gesceaftum", "unawendendne", "singallice", "sibbe"]);

    let stats = catalog.cache_stats();
    assert_eq!(stats.misses, 1, "the query text compiled exactly once");
    assert_eq!(stats.hits, 3);
    assert_eq!(stats.cross_doc_hits, 3, "every further document reused ms-0's plan");
    assert_eq!(stats.entries, 1);
}

#[test]
fn parallel_queries_through_a_shared_reference() {
    let catalog = corpus(3);
    let expected = ["gesceaftum", "unawendendne", "singallice"];
    let q = "for $w in /descendant::w[overlapping::line] return string($w)";

    // Warm both plans on ms-0 so the parallel phase is deterministic
    // (two concurrent first-misses would both compile — benign, but it
    // would blur the counters this test asserts).
    catalog.xquery("ms-0", q).unwrap();
    catalog.xpath("ms-0", "count(/descendant::w)").unwrap();

    // Many threads, one &Catalog: different documents in parallel, and
    // every document also queried by several threads at once.
    thread::scope(|s| {
        for round in 0..4 {
            for (i, want) in expected.iter().enumerate() {
                let catalog = &catalog;
                s.spawn(move || {
                    let id = format!("ms-{i}");
                    let out = catalog.xquery(&id, q).unwrap();
                    assert_eq!(out.serialize(), *want, "round {round}, {id}");
                    let n = catalog.xpath(&id, "count(/descendant::w)").unwrap();
                    assert_eq!(n.num(), Some(5.0));
                });
            }
        }
    });

    let stats = catalog.cache_stats();
    assert_eq!(stats.misses, 2, "two distinct query texts, compiled once each");
    assert_eq!(stats.hits, 24, "4 rounds × 3 documents × 2 queries, all cache hits");
    assert_eq!(stats.cross_doc_hits, 16, "every hit from ms-1/ms-2 crossed documents");
}

#[test]
fn concurrent_sessions_share_plans() {
    let catalog = corpus(2);
    thread::scope(|s| {
        for i in 0..2 {
            let catalog = &catalog;
            s.spawn(move || {
                let session = catalog.session(&format!("ms-{i}")).unwrap();
                for _ in 0..3 {
                    let out = session.xquery("count(/descendant::line)").unwrap();
                    assert_eq!(out.serialize(), "2");
                }
            });
        }
    });
    assert_eq!(catalog.cache_stats().misses, 1);
}

#[test]
fn eviction_pressure_with_mixed_languages() {
    // Capacity 2, two documents, one query text valid in both languages:
    // four distinct (language, document) evaluations must stay four
    // distinct semantics while occupying at most two cache entries.
    let catalog = corpus(2).with_plan_cache_capacity(2);
    let q = "count(/descendant::w)"; // valid XPath *and* XQuery

    for id in ["ms-0", "ms-1"] {
        assert_eq!(catalog.xquery(id, q).unwrap().serialize(), "5");
        assert_eq!(catalog.xpath(id, q).unwrap().num(), Some(5.0));
    }
    let stats = catalog.cache_stats();
    assert_eq!(stats.entries, 2, "one entry per language, shared across documents");
    assert_eq!(stats.misses, 2);
    assert_eq!(stats.hits, 2);
    assert_eq!(stats.cross_doc_hits, 2);
    assert_eq!(stats.evictions, 0, "capacity 2 fits both languages");

    // Now overflow the capacity with fresh texts and re-issue the shared
    // query: evictions happen, semantics never bleed across languages.
    catalog.xpath("ms-0", "/descendant::line").unwrap();
    catalog.xpath("ms-1", "/descendant::w[2]").unwrap();
    assert!(catalog.cache_stats().evictions >= 2);
    assert_eq!(catalog.xquery("ms-1", q).unwrap().serialize(), "5");
    assert_eq!(catalog.xpath("ms-1", q).unwrap().num(), Some(5.0));
    assert_eq!(catalog.cache_stats().entries, 2);
}

#[test]
fn typed_errors_name_the_stage() {
    let catalog = corpus(1);

    match catalog.xquery("ms-0", "for $x in") {
        Err(EngineError::Parse { lang: QueryLang::XQuery, at: Some(_), .. }) => {}
        other => panic!("expected XQuery parse error, got {other:?}"),
    }
    match catalog.xpath("ms-0", "/descendant::") {
        Err(EngineError::Parse { lang: QueryLang::XPath, .. }) => {}
        other => panic!("expected XPath parse error, got {other:?}"),
    }
    match catalog.xquery("ms-0", "for $w in /descendant::w return $typo") {
        Err(EngineError::Compile { lang: QueryLang::XQuery, message }) => {
            assert!(message.contains("$typo"), "{message}");
        }
        other => panic!("expected compile error, got {other:?}"),
    }
    match catalog.xquery("ms-0", "1 idiv 0") {
        Err(EngineError::Eval { lang: QueryLang::XQuery, .. }) => {}
        other => panic!("expected eval error, got {other:?}"),
    }
    match catalog.xquery("unregistered", "1") {
        Err(EngineError::UnknownDocument { id }) => assert_eq!(id, "unregistered"),
        other => panic!("expected unknown-document error, got {other:?}"),
    }
    match catalog.add_hierarchy("ms-0", "bad", "<r>different text entirely</r>") {
        Err(EngineError::Document { .. }) => {}
        other => panic!("expected document error, got {other:?}"),
    }

    // Failed parses/compiles never pollute the shared cache; queries for
    // unknown documents never even compile. Only `1 idiv 0` — valid text
    // that failed at evaluation — was worth keeping.
    assert_eq!(catalog.cache_stats().entries, 1);
}

#[test]
fn resize_mid_life_preserves_plans_and_counters() {
    let catalog = corpus(1);
    for i in 1..=4 {
        catalog.xpath("ms-0", &format!("/descendant::w[{i}]")).unwrap();
    }
    catalog.xpath("ms-0", "/descendant::w[4]").unwrap();
    let before = catalog.cache_stats();
    assert_eq!(before.entries, 4);
    assert_eq!(before.hits, 1);

    catalog.set_plan_cache_capacity(2);
    let after = catalog.cache_stats();
    assert_eq!(after.entries, 2, "kept the two most recent plans");
    assert_eq!(after.hits, before.hits, "counters are cumulative across resize");
    assert_eq!(after.misses, before.misses);
    assert_eq!(after.evictions, before.evictions + 2);

    // The most recently used plans survived.
    catalog.xpath("ms-0", "/descendant::w[4]").unwrap();
    catalog.xpath("ms-0", "/descendant::w[3]").unwrap();
    assert_eq!(catalog.cache_stats().hits, before.hits + 2);
    assert_eq!(catalog.plan_cache_capacity(), 2);
}

#[test]
fn query_outcome_is_language_agnostic() {
    let catalog = corpus(1);

    let nodes = catalog.xpath("ms-0", "/descendant::line").unwrap();
    assert_eq!(nodes.lang(), QueryLang::XPath);
    assert_eq!(nodes.nodes().unwrap().len(), 2);
    assert!(!nodes.is_empty());

    let num = catalog.xpath("ms-0", "count(/descendant::line)").unwrap();
    assert_eq!(num.num(), Some(2.0));
    assert_eq!(num.serialize(), "2");

    let b = catalog.xpath("ms-0", "count(/descendant::line) > 1").unwrap();
    assert_eq!(b.bool(), Some(true));
    assert_eq!(b.serialize(), "true");

    let markup = catalog.xquery("ms-0", "<out>{count(/descendant::line)}</out>").unwrap();
    assert_eq!(markup.lang(), QueryLang::XQuery);
    assert_eq!(markup.serialize(), "<out>2</out>");
    match markup.into_value() {
        QueryValue::Markup(s) => assert_eq!(s, "<out>2</out>"),
        other => panic!("expected markup, got {other:?}"),
    }

    // Both languages serialize node results identically.
    let via_xpath = catalog.xpath("ms-0", "(/descendant::w)[2]").unwrap();
    let via_xquery = catalog.xquery("ms-0", "(/descendant::w)[2]").unwrap();
    assert_eq!(via_xpath.serialize(), via_xquery.serialize());
    assert_eq!(via_xpath.serialize(), "<w>unawendendne</w>");
}

#[test]
fn prepared_queries_run_on_any_document_and_any_session() {
    let catalog = corpus(3);
    let q = catalog
        .prepare(QueryLang::XQuery, "string((/descendant::w[overlapping::line])[1])")
        .unwrap();
    let expected = ["gesceaftum", "unawendendne", "singallice"];
    for (i, want) in expected.iter().enumerate() {
        let id = format!("ms-{i}");
        assert_eq!(catalog.execute(&id, &q).unwrap().serialize(), *want);
        let session = catalog.session(&id).unwrap();
        assert_eq!(session.run(&q).unwrap().serialize(), *want);
    }
}

#[test]
fn per_document_mutation_does_not_disturb_neighbours() {
    let catalog = corpus(2);
    let line_texts = "for $l in /descendant::line return (string($l), '|')";
    let before_ms1 = catalog.xquery("ms-1", line_texts).unwrap();

    // Annotate ms-0 with a third hierarchy; ms-1 must be untouched and
    // the shared plans must survive.
    let text = catalog.with_document("ms-0", |g| g.text().to_string()).unwrap();
    let (a, b) = text.split_at(7);
    catalog
        .add_hierarchy("ms-0", "halves", &format!("<r><half>{a}</half><half>{b}</half></r>"))
        .unwrap();

    assert_eq!(catalog.with_document("ms-0", |g| g.hierarchy_count()).unwrap(), 3);
    assert_eq!(catalog.with_document("ms-1", |g| g.hierarchy_count()).unwrap(), 2);
    assert_eq!(catalog.xpath("ms-0", "count(/descendant::half)").unwrap().num(), Some(2.0));
    assert_eq!(catalog.xquery("ms-1", line_texts).unwrap(), before_ms1);
}

#[test]
fn engine_wrapper_is_a_one_document_catalog() {
    let engine = Engine::new(manuscript(2));
    let out = engine.xquery("string((/descendant::w[overlapping::line])[1])").unwrap();
    assert_eq!(out.serialize(), "singallice");

    // The wrapper exposes its catalog: more documents can join later.
    engine.catalog().insert("extra", manuscript(0));
    assert_eq!(engine.catalog().len(), 2);
    let out = engine.catalog().xquery("extra", "string((/descendant::w[overlapping::line])[1])");
    assert_eq!(out.unwrap().serialize(), "gesceaftum");
    assert_eq!(engine.cache_stats().cross_doc_hits, 1);

    let session = engine.session();
    assert_eq!(session.doc_id(), "main");
}

#[test]
fn prepared_queries_respect_the_per_session_optimize_knob() {
    let catalog = corpus(1);
    // A predicate-heavy query the optimizer rewrites: `//w` fuses to an
    // indexed scan and the position-free predicate batch-routes.
    let q = catalog.prepare(QueryLang::XPath, "//w[overlapping::line]").unwrap();

    let on = catalog.session("ms-0").unwrap();
    let mut off = catalog.session("ms-0").unwrap();
    off.options_mut().optimize = false;

    // Same answer either way — the knob may never change results.
    let expected = on.run(&q).unwrap().into_string();
    assert_eq!(off.run(&q).unwrap().serialize(), expected);

    // But the knob really selects a different plan at execution time: the
    // optimize-on run reports rewritten steps, the optimize-off run none.
    let after_both = catalog.eval_stats();
    assert!(after_both.rewritten_steps > 0, "{after_both:?}");
    off.run(&q).unwrap();
    let after_off_again = catalog.eval_stats();
    assert_eq!(
        after_off_again.rewritten_steps, after_both.rewritten_steps,
        "optimize-off execution must evaluate the as-written plan"
    );

    // One compilation serves both knob settings: the prepared handle and
    // the cache entry are shared, never forked per knob.
    assert_eq!(catalog.cache_stats().misses, 1);
    assert_eq!(catalog.cache_stats().entries, 1);
}

#[test]
fn flipping_the_knob_on_a_live_session_reresolves_behavior() {
    let catalog = corpus(1);
    let mut session = catalog.session("ms-0").unwrap();
    let q = catalog.prepare(QueryLang::XQuery, "count(//w[overlapping::line])").unwrap();

    let optimized = session.run(&q).unwrap().into_string();
    let rewritten_after_on = catalog.eval_stats().rewritten_steps;
    assert!(rewritten_after_on > 0);

    // Flip the knob mid-session: the very next execution of the *same*
    // prepared handle must use the as-written plan (no stale plan reuse).
    session.options_mut().optimize = false;
    assert_eq!(session.run(&q).unwrap().serialize(), optimized);
    assert_eq!(catalog.eval_stats().rewritten_steps, rewritten_after_on);

    // And back on: rewrites resume, still without recompiling.
    session.options_mut().optimize = true;
    assert_eq!(session.run(&q).unwrap().serialize(), optimized);
    assert!(catalog.eval_stats().rewritten_steps > rewritten_after_on);
    assert_eq!(catalog.cache_stats().misses, 1, "one parse served every knob flip");
}

#[test]
fn plan_cache_does_not_collide_across_optimize_settings() {
    // Two catalogs, one configured optimize-off by default: the same query
    // text must behave per-catalog (plans carry both forms; the knob is
    // evaluation state, not a cache key — so collisions are impossible).
    let on = corpus(1);
    let off = Catalog::with_options(EvalOptions { optimize: false, ..Default::default() });
    off.insert("ms-0", manuscript(0));

    let q = "//w[overlapping::line]";
    let a = on.xpath("ms-0", q).unwrap().into_string();
    let b = off.xpath("ms-0", q).unwrap().into_string();
    assert_eq!(a, b);
    assert!(on.eval_stats().rewritten_steps > 0);
    assert_eq!(off.eval_stats().rewritten_steps, 0);
}
