//! Integration across crates: generators → KyGODDAG → engines → baselines.

use multihier_xquery::baseline::{queries, to_fragmentation, to_milestone};
use multihier_xquery::corpus::{generate, generate_tei, GeneratorConfig, TeiConfig};
use multihier_xquery::prelude::*;

#[test]
fn synthetic_pipeline_agrees_across_representations() {
    for seed in [1u64, 7, 23] {
        for jitter in [0.0, 0.6, 1.0] {
            let doc = generate(&GeneratorConfig {
                seed,
                text_len: 800,
                hierarchies: 3,
                boundary_jitter: jitter,
                avg_element_len: 30,
                ..Default::default()
            });
            let g = doc.build_goddag();
            let ms = to_milestone(&g, "h0");
            let fr = to_fragmentation(&g, "h0");
            let gd = queries::goddag_overlap_count(&g, "e0", "e1");
            assert_eq!(gd, queries::milestone_overlap_count(&ms, "e0", "h1", "e1"));
            assert_eq!(gd, queries::fragmentation_overlap_count(&fr, "e0", "h1", "e1"));
            let gc = queries::goddag_containment_count(&g, "e0", "e1");
            assert_eq!(gc, queries::milestone_containment_count(&ms, "e0", "h1", "e1"));
            assert_eq!(gc, queries::fragmentation_containment_count(&fr, "e0", "h1", "e1"));
        }
    }
}

#[test]
fn xquery_count_equals_axis_count() {
    // The engine's `overlapping::` axis and the region-based join must
    // count the same pairs.
    let doc = generate(&GeneratorConfig {
        text_len: 600,
        hierarchies: 2,
        boundary_jitter: 1.0,
        ..Default::default()
    });
    let g = doc.build_goddag();
    let via_axis = queries::goddag_overlap_count(&g, "e0", "e1");
    let via_query =
        run_query(&g, "sum(for $a in /descendant::e0 return count($a/overlapping::e1))").unwrap();
    assert_eq!(via_axis.to_string(), via_query);
}

#[test]
fn tei_concordance_pipeline() {
    let doc = generate_tei(&TeiConfig { acts: 1, scenes_per_act: 2, ..Default::default() });
    let g = doc.build_goddag();
    // Full pipeline: regex search → temp hierarchy → both base hierarchies.
    let out = run_query(
        &g,
        "let $res := analyze-string(root(), 'gardena') \
         return count($res/child::m)",
    )
    .unwrap();
    let hits: usize = out.parse().unwrap();
    // Find each hit's speaker and line through the DAG.
    let speakers = run_query(
        &g,
        "let $res := analyze-string(root(), 'gardena') \
         return count($res/child::m/xancestor::sp)",
    )
    .unwrap();
    // Every whole-word hit sits inside at least one speech (unless it
    // straddles, then it overlaps).
    let total = run_query(
        &g,
        "let $res := analyze-string(root(), 'gardena') \
         return count($res/child::m[xancestor::sp or overlapping::sp])",
    )
    .unwrap();
    assert_eq!(total.parse::<usize>().unwrap(), hits);
    assert!(speakers.parse::<usize>().unwrap() <= hits * 2);
}

#[test]
fn dtd_validated_corpus_to_goddag() {
    // DTD layer + goddag layer compose: validate then build.
    use multihier_xquery::xml::dtd::{parse_dtd, validate, ValidationOptions};
    let dtd = parse_dtd(
        "<!ELEMENT r (e0+)> <!ELEMENT e0 (#PCDATA|s0)*> <!ELEMENT s0 (#PCDATA)> \
         <!ATTLIST e0 n CDATA #REQUIRED>",
        "h0",
    )
    .unwrap();
    let doc = generate(&GeneratorConfig { text_len: 300, hierarchies: 1, ..Default::default() });
    let parsed = multihier_xquery::xml::parse(&doc.encodings[0].1).unwrap();
    validate(&parsed, &dtd, &ValidationOptions::default()).unwrap();
    let g = GoddagBuilder::new().hierarchy_doc("h0", parsed).build().unwrap();
    assert_eq!(g.text(), doc.text);
}

#[test]
fn goddag_survives_many_virtual_cycles() {
    let doc = generate(&GeneratorConfig { text_len: 400, hierarchies: 2, ..Default::default() });
    let g = doc.build_goddag();
    let leaves_before = g.leaf_count();
    for i in 0..20 {
        let q = format!(
            "let $r := analyze-string(root(), '{}') return count($r/descendant::leaf())",
            ["ge", "sc", "um", "de"][i % 4]
        );
        run_query(&g, &q).unwrap();
    }
    assert_eq!(g.leaf_count(), leaves_before);
}

#[test]
fn order_is_stable_across_queries() {
    let doc = generate(&GeneratorConfig { text_len: 500, hierarchies: 3, ..Default::default() });
    let g = doc.build_goddag();
    let a = run_query(&g, "for $n in /descendant::* return concat(name($n), ' ')").unwrap();
    let b = run_query(&g, "for $n in /descendant::* return concat(name($n), ' ')").unwrap();
    assert_eq!(a, b, "Definition-3 order is stable");
}
