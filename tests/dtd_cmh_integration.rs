//! Integration: the DTD/CMH layer against realistic schema collections.

use multihier_xquery::goddag::Cmh;
use multihier_xquery::xml::dtd::{parse_dtd, ContentAutomaton, ContentSpec, Determinism};

#[test]
fn tei_like_cmh_validates_generated_drama() {
    let logical = parse_dtd(
        "<!ELEMENT r (act+)> <!ELEMENT act (scene+)> <!ELEMENT scene (sp+)> \
         <!ELEMENT sp (#PCDATA)> \
         <!ATTLIST act n CDATA #REQUIRED> \
         <!ATTLIST scene n CDATA #REQUIRED> \
         <!ATTLIST sp who CDATA #REQUIRED>",
        "logical",
    )
    .unwrap();
    let physical = parse_dtd(
        "<!ELEMENT r (page+)> <!ELEMENT page (phline+)> <!ELEMENT phline (#PCDATA)> \
         <!ATTLIST page n CDATA #REQUIRED> \
         <!ATTLIST phline n CDATA #REQUIRED>",
        "physical",
    )
    .unwrap();
    let cmh = Cmh::new("r", vec![logical, physical]).unwrap();
    let doc = multihier_xquery::corpus::generate_tei(&Default::default());
    let parsed = vec![
        multihier_xquery::xml::parse(&doc.logical).unwrap(),
        multihier_xquery::xml::parse(&doc.physical).unwrap(),
    ];
    cmh.validate_documents(&parsed).unwrap();
}

#[test]
fn cmh_rejects_hierarchies_sharing_a_nonroot_element() {
    let a = parse_dtd("<!ELEMENT r (w*)> <!ELEMENT w (#PCDATA)>", "a").unwrap();
    let b =
        parse_dtd("<!ELEMENT r (seg*)> <!ELEMENT seg (#PCDATA|w)*> <!ELEMENT w (#PCDATA)>", "b")
            .unwrap();
    assert!(Cmh::new("r", vec![a, b]).is_err());
}

#[test]
fn content_model_determinism_is_enforced_knowledge() {
    // XML 1.0 appendix E: (a,b)|(a,c) is non-deterministic.
    let dtd = parse_dtd("<!ELEMENT x ((a,b)|(a,c))>", "t").unwrap();
    let ContentSpec::Children(p) = &dtd.element("x").unwrap().content else { panic!() };
    let auto = ContentAutomaton::compile(p);
    assert_eq!(*auto.determinism(), Determinism::Ambiguous("a".to_string()));
    // Its deterministic rewrite is fine.
    let dtd2 = parse_dtd("<!ELEMENT x (a,(b|c))>", "t").unwrap();
    let ContentSpec::Children(p2) = &dtd2.element("x").unwrap().content else { panic!() };
    assert_eq!(*ContentAutomaton::compile(p2).determinism(), Determinism::Deterministic);
}

#[test]
fn figure1_cmh_catches_wrong_documents() {
    let cmh = multihier_xquery::corpus::figure1::cmh();
    // Swap two encodings: the words document is not valid under lines' DTD.
    let docs = multihier_xquery::corpus::figure1::documents();
    let swapped = vec![docs[1].clone(), docs[0].clone(), docs[2].clone(), docs[3].clone()];
    assert!(cmh.validate_documents(&swapped).is_err());
}

#[test]
fn mixed_and_element_content_interact() {
    let dtd = parse_dtd(
        "<!ELEMENT r (head, body)> <!ELEMENT head (#PCDATA)> \
         <!ELEMENT body (#PCDATA|em|strong)*> <!ELEMENT em (#PCDATA)> \
         <!ELEMENT strong (#PCDATA)>",
        "t",
    )
    .unwrap();
    let ok = multihier_xquery::xml::parse(
        "<r><head>t</head><body>a<em>b</em>c<strong>d</strong></body></r>",
    )
    .unwrap();
    multihier_xquery::xml::dtd::validate(&ok, &dtd, &Default::default()).unwrap();
    let bad = multihier_xquery::xml::parse("<r><body>x</body><head>t</head></r>").unwrap();
    assert!(multihier_xquery::xml::dtd::validate(&bad, &dtd, &Default::default()).is_err());
}
