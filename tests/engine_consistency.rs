//! Integration: the standalone XPath engine and the XQuery engine agree on
//! the path sub-language, on random documents.

use multihier_xquery::corpus::{generate, GeneratorConfig};
use multihier_xquery::prelude::*;
use multihier_xquery::xpath::Value;

/// Evaluate a path in both engines and compare result node string-values.
fn compare(g: &mhx_goddag::Goddag, path: &str) {
    let xp = match evaluate_xpath(g, path).unwrap() {
        Value::Nodes(ns) => ns
            .iter()
            .map(|&n| format!("{}:{}", g.name(n).unwrap_or(""), g.string_value(n)))
            .collect::<Vec<_>>(),
        other => panic!("expected node-set from `{path}`, got {other:?}"),
    };
    let q = format!("for $n in {path} return concat(name($n), ':', string($n), '\u{1}')");
    let xq_out = run_query(g, &q).unwrap();
    let xq: Vec<String> =
        xq_out.split('\u{1}').filter(|s| !s.is_empty()).map(str::to_string).collect();
    assert_eq!(xp, xq, "engines disagree on `{path}`");
}

#[test]
fn engines_agree_on_extended_paths() {
    let doc = generate(&GeneratorConfig {
        text_len: 700,
        hierarchies: 3,
        boundary_jitter: 0.8,
        nested: true,
        ..Default::default()
    });
    let g = doc.build_goddag();
    for path in [
        "/descendant::e0",
        "/descendant::e1[overlapping::e0]",
        "/descendant::e2[xancestor::e0]",
        "/descendant::e0/xdescendant::e1",
        "/descendant::e0[1]/xfollowing::e1",
        "/descendant::e0[last()]/xpreceding::e1",
        "/descendant::e1[preceding-overlapping::e0]",
        "/descendant::e1[following-overlapping::e0]",
        "/descendant::leaf()[ancestor::e0 and ancestor::e1]",
        "/descendant::text(\"h0\")",
        "/descendant::node(\"h1\")[2]",
        "/descendant::*(\"h2\")",
        "/descendant::s0/parent::node()",
        "//e0/following-sibling::e0[1]",
        "/descendant::e0[@n = '1']",
    ] {
        compare(&g, path);
    }
}

#[test]
fn engines_agree_on_figure1_paths() {
    let g = multihier_xquery::corpus::figure1::goddag();
    for path in [
        "/descendant::line[xdescendant::w[string(.) = 'singallice'] or \
         overlapping::w[string(.) = 'singallice']]",
        "/descendant::w[xancestor::dmg or xdescendant::dmg or overlapping::dmg]",
        "/descendant::leaf()[ancestor::w and ancestor::dmg]",
        "/descendant::vline/xdescendant::res",
        "/descendant::res[overlapping::line]",
    ] {
        compare(&g, path);
    }
}

/// Engine counters for the batch path: both languages report steps taken
/// set-at-a-time and steps executed from optimizer-rewritten plans.
#[test]
fn engine_counts_batched_and_rewritten_steps() {
    let doc = generate(&GeneratorConfig {
        text_len: 700,
        hierarchies: 3,
        boundary_jitter: 0.8,
        nested: true,
        ..Default::default()
    });
    let catalog = Catalog::new();
    catalog.insert("doc", doc.build_goddag());
    assert_eq!(catalog.eval_stats(), EvalStats::default(), "counters start at zero");

    // `//e0[xfollowing::e1]` desugars to two axis walks; the optimizer
    // fuses them into one indexed scan and batch-routes the predicate, so
    // the (default-on) path reports one batched, rewritten step.
    catalog.xpath("doc", "//e0[xfollowing::e1]").unwrap();
    let after_xpath = catalog.eval_stats();
    assert!(after_xpath.batched_steps >= 1, "{after_xpath:?}");
    assert!(after_xpath.rewritten_steps >= 1, "{after_xpath:?}");
    assert!(after_xpath.plan_rewrites >= 2, "fusion + batch routing: {after_xpath:?}");

    // Same path through the XQuery evaluator: counters keep growing.
    catalog.xquery("doc", "for $n in //e0[xfollowing::e1] return name($n)").unwrap();
    let after_xquery = catalog.eval_stats();
    assert!(after_xquery.batched_steps > after_xpath.batched_steps, "{after_xquery:?}");
    assert!(after_xquery.rewritten_steps > after_xpath.rewritten_steps, "{after_xquery:?}");

    // Optimize off: predicate-free steps still batch, but nothing is
    // "rewritten" — the knob really selects the as-written plan.
    let mut session = catalog.session("doc").unwrap();
    session.options_mut().optimize = false;
    session.xpath("/descendant::e0/xfollowing::e1").unwrap();
    let after_off = catalog.eval_stats();
    assert!(after_off.batched_steps > after_xquery.batched_steps, "{after_off:?}");
    assert_eq!(after_off.rewritten_steps, after_xquery.rewritten_steps, "{after_off:?}");
    assert_eq!(after_off.plan_rewrites, after_xquery.plan_rewrites, "{after_off:?}");

    // A positional predicate pins its step to the per-node path: the
    // rewritten counter must not move for a purely positional step.
    let before = catalog.eval_stats();
    catalog.xpath("doc", "/descendant::e0[position() = 2]").unwrap();
    let after_positional = catalog.eval_stats();
    assert_eq!(after_positional.rewritten_steps, before.rewritten_steps, "{after_positional:?}");
}

#[test]
fn xpath_functions_match_xquery_functions() {
    let g = multihier_xquery::corpus::figure1::goddag();
    for (xp, xq) in [
        ("count(/descendant::w)", "count(/descendant::w)"),
        ("string-length(string(/))", "string-length(string(root()))"),
        ("normalize-space('  a  b ')", "normalize-space('  a  b ')"),
        ("substring('singallice', 4, 4)", "substring('singallice', 4, 4)"),
        ("translate('abc', 'ab', 'x')", "translate('abc', 'ab', 'x')"),
    ] {
        let a = evaluate_xpath(&g, xp).unwrap().to_str(&g);
        let b = run_query(&g, xq).unwrap();
        assert_eq!(a, b, "{xp} vs {xq}");
    }
}
