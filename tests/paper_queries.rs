//! Integration: every paper artifact through the public facade.

use multihier_xquery::corpus::figure1;
use multihier_xquery::prelude::*;
use multihier_xquery::xquery::{run_query_sequence, AnalyzeMode};

#[test]
fn e1_figure1_cmh_and_roundtrip() {
    let cmh = figure1::cmh();
    cmh.validate_documents(&figure1::documents()).unwrap();
    for (name, src) in figure1::ENCODINGS {
        let doc = multihier_xquery::xml::parse(src).unwrap();
        assert_eq!(multihier_xquery::xml::to_string(&doc), src, "{name} round-trips");
        assert_eq!(doc.string_value(doc.root_element().unwrap()), figure1::TEXT, "{name} spells S");
    }
}

#[test]
fn e2_figure2_structure() {
    let g = figure1::goddag();
    assert_eq!(g.leaf_count(), 16);
    let leaf_texts: Vec<&str> = g.leaves().iter().map(|&l| g.string_value(l)).collect();
    assert_eq!(leaf_texts, figure1::LEAVES);
    // Node counts per hierarchy as in Figure 2.
    let count = |name: &str| {
        let h = g.hierarchy_id(name).unwrap();
        g.hierarchy(h).element_count()
    };
    assert_eq!(count("lines"), 2); // line1, line2
    assert_eq!(count("words"), 9); // 3 vlines + 6 words
    assert_eq!(count("restorations"), 3); // res1..res3
    assert_eq!(count("damage"), 2); // dmg1, dmg2
                                    // The DOT dump mentions every cluster and all 16 leaf boxes.
    let dot = multihier_xquery::goddag::dot::to_dot(&g);
    for c in ["cluster_0", "cluster_1", "cluster_2", "cluster_3"] {
        assert!(dot.contains(c));
    }
    assert_eq!(dot.matches("shape=box").count(), 16);
}

#[test]
fn e3_to_e7_all_paper_queries() {
    let g = figure1::goddag();
    for (id, query, expected) in figure1::PAPER_QUERIES {
        let out = run_query(&g, query).unwrap_or_else(|e| panic!("query {id}: {e}"));
        assert_eq!(out, expected, "query {id}");
    }
}

#[test]
fn query_i1_via_plain_xpath_engine_too() {
    // The path-only part of I.1 works in the standalone XPath engine.
    let g = figure1::goddag();
    let v = evaluate_xpath(
        &g,
        "/descendant::line[xdescendant::w[string(.) = 'singallice'] or \
         overlapping::w[string(.) = 'singallice']]",
    )
    .unwrap();
    let multihier_xquery::xpath::Value::Nodes(ns) = v else { panic!("expected nodes") };
    let texts: Vec<&str> = ns.iter().map(|&n| g.string_value(n)).collect();
    assert_eq!(texts, vec!["gesceaftum unawendendne sin", "gallice sibbe gecynde þa"]);
}

#[test]
fn temporary_hierarchies_never_leak() {
    let g = figure1::goddag();
    for _ in 0..3 {
        run_query(&g, figure1::QUERY_II1).unwrap();
        run_query(&g, figure1::QUERY_III1).unwrap();
    }
    assert_eq!(g.hierarchy_count(), 4);
    assert_eq!(g.leaf_count(), 16);
}

#[test]
fn xslt_mode_differs_from_paper_mode() {
    let g = figure1::goddag();
    let paper = run_query_with(&g, figure1::QUERY_EX1, &EvalOptions::default()).unwrap();
    let xslt = run_query_with(
        &g,
        figure1::QUERY_EX1,
        &EvalOptions { analyze_mode: AnalyzeMode::Xslt, ..Default::default() },
    )
    .unwrap();
    assert_eq!(paper, figure1::EXPECTED_EX1);
    assert_ne!(paper, xslt, "anchored .* patterns behave differently in XSLT mode");
}

#[test]
fn sequence_output_form() {
    let g = figure1::goddag();
    let items = run_query_sequence(&g, figure1::QUERY_I1, &EvalOptions::default()).unwrap();
    assert_eq!(items, vec!["gesceaftum unawendendne sin", "gallice sibbe gecynde þa"]);
}
