//! Differential property suite for the plan-level optimizer: on random
//! GODDAGs, random paths with mixed positional / position-free predicates
//! must produce **identical node sets (document order included)** with the
//! optimizer on and off, through both the XPath and the XQuery entry
//! points. The as-written plan is the reference oracle; every rewrite
//! (predicate reordering, `//x` fusion, set-at-a-time batch routing) has
//! to be invisible in the results.
//!
//! The second half pins positional semantics with hand-computed answers:
//! the optimizer must never reorder across a positional predicate, and a
//! positional predicate applied *before* a structural one is a different
//! query than the reverse order.

use multihier_xquery::corpus::{generate, GeneratorConfig};
use multihier_xquery::goddag::{Goddag, NodeId, StructIndex};
use multihier_xquery::prelude::*;
use multihier_xquery::xpath::plan::EvalCounters;
use multihier_xquery::xpath::{CompiledXPath, Context, Value};
use multihier_xquery::xquery::{parse_query, run_parsed_with};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        0u32..500,
        (60usize..240),
        (1usize..4),
        (5usize..25),
        (0usize..=10),
        prop_oneof![Just(true), Just(false)],
    )
        .prop_map(|(seed, text_len, hierarchies, avg_element_len, jitter, nested)| {
            GeneratorConfig {
                seed: seed as u64,
                text_len,
                hierarchies,
                avg_element_len,
                boundary_jitter: jitter as f64 / 10.0,
                nested,
            }
        })
}

/// Predicates spanning every optimizer class: positional (numeric,
/// `position()`, `last()`), position-free structural (extended-axis
/// subqueries, attribute and child tests), and position-free value tests.
fn arb_predicate() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        // positional
        Just("1"),
        Just("2"),
        Just("position() = 2"),
        Just("position() < last()"),
        Just("last()"),
        Just("count(child::node()) + 1"),
        // position-free, cheap
        Just("@n"),
        Just("child::s0"),
        Just("string-length(string(.)) > 4"),
        Just("contains(string(.), 'a')"),
        // position-free, extended-axis (expensive: reorder targets)
        Just("xancestor::e0"),
        Just("xfollowing::e1"),
        Just("xdescendant::e1"),
        Just("overlapping::e0"),
        Just("xancestor::e0[1]"),
    ]
}

fn arb_step() -> impl Strategy<Value = String> {
    let axis = prop_oneof![
        Just("descendant"),
        Just("descendant-or-self"),
        Just("child"),
        Just("xfollowing"),
        Just("xpreceding"),
        Just("xdescendant"),
        Just("xancestor"),
        Just("overlapping"),
        Just("following"),
        Just("ancestor"),
    ];
    let test = prop_oneof![
        Just("e0".to_string()),
        Just("e1".to_string()),
        Just("s0".to_string()),
        Just("*".to_string()),
        Just("node()".to_string()),
        Just("leaf()".to_string()),
    ];
    let preds = proptest::collection::vec(arb_predicate(), 0..3);
    (axis, test, preds).prop_map(|(a, t, ps)| {
        let preds: String = ps.iter().map(|p| format!("[{p}]")).collect();
        format!("{a}::{t}{preds}")
    })
}

/// Paths mixing explicit steps with `//` abbreviations (the fusion
/// target); always absolute so both engines start from the root.
fn arb_path() -> impl Strategy<Value = String> {
    let joiner = prop_oneof![Just("/"), Just("//")];
    (proptest::collection::vec(arb_step(), 1..4), proptest::collection::vec(joiner, 0..3)).prop_map(
        |(steps, joiners)| {
            let mut out = String::new();
            for (i, s) in steps.iter().enumerate() {
                let sep = if i == 0 { "/" } else { *joiners.get(i - 1).unwrap_or(&"/") };
                out.push_str(sep);
                out.push_str(s);
            }
            out
        },
    )
}

/// Boolean single-step extended-axis predicates — the existential
/// early-exit (first-witness probe) targets.
fn arb_boolean_axis_predicate() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("xancestor::e0"),
        Just("xfollowing::e1"),
        Just("xpreceding::e0"),
        Just("xdescendant::e1"),
        Just("overlapping::e0"),
        Just("preceding-overlapping::e1"),
        Just("following-overlapping::e0"),
        // Near-misses the optimizer must leave alone, mixed in so the
        // annotated and unannotated paths interleave on one step.
        Just("count(xfollowing::e1)"),
        Just("xancestor::e0[1]"),
        Just("2"),
    ]
}

/// `//a//b`-shaped chains (the chain-join target) with predicate lists
/// biased toward boolean axis predicates on the inner step.
fn arb_chain_path() -> impl Strategy<Value = String> {
    let name = prop_oneof![Just("e0"), Just("e1"), Just("s0")];
    (name.clone(), name, proptest::collection::vec(arb_boolean_axis_predicate(), 0..3)).prop_map(
        |(a, b, ps)| {
            let preds: String = ps.iter().map(|p| format!("[{p}]")).collect();
            format!("//{a}//{b}{preds}")
        },
    )
}

fn xpath_nodes(
    g: &Goddag,
    idx: &StructIndex,
    compiled: &CompiledXPath,
    optimize: bool,
) -> Vec<NodeId> {
    let v = compiled
        .evaluate_with(g, idx, &Context::new(NodeId::Root), optimize, &EvalCounters::default())
        .unwrap();
    match v {
        Value::Nodes(ns) => ns,
        other => panic!("path should yield a node-set, got {other:?}"),
    }
}

fn xquery_trace(g: &Goddag, path: &str, optimize: bool) -> String {
    let q = format!("for $n in {path} return concat(name($n), ':', string($n), '\u{1}')");
    let ast = parse_query(&q).unwrap();
    let opts = EvalOptions { optimize, ..Default::default() };
    run_parsed_with(g, &ast, &opts).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Optimized == unoptimized node sets (order included) for random
    /// predicate-heavy paths, through both engines.
    #[test]
    fn optimizer_is_invisible_in_results(cfg in arb_config(), path in arb_path()) {
        let g = generate(&cfg).build_goddag();
        let idx = StructIndex::build(&g);
        let compiled = CompiledXPath::compile(&path).unwrap();

        let base = xpath_nodes(&g, &idx, &compiled, false);
        let opt = xpath_nodes(&g, &idx, &compiled, true);
        prop_assert_eq!(&base, &opt, "xpath optimized vs as-written on `{}`", path);
        // Results must be in document order with no duplicates.
        for w in opt.windows(2) {
            prop_assert_eq!(g.cmp_order(w[0], w[1]), std::cmp::Ordering::Less);
        }

        let q_base = xquery_trace(&g, &path, false);
        let q_opt = xquery_trace(&g, &path, true);
        prop_assert_eq!(&q_base, &q_opt, "xquery optimized vs as-written on `{}`", path);
    }

    /// The two engines also agree with each other under the optimizer —
    /// the rewrite layers never diverge between the XPath and XQuery
    /// wirings.
    #[test]
    fn engines_agree_under_optimizer(cfg in arb_config(), path in arb_path()) {
        let g = generate(&cfg).build_goddag();
        let idx = StructIndex::build(&g);
        let compiled = CompiledXPath::compile(&path).unwrap();
        let xp: Vec<String> = xpath_nodes(&g, &idx, &compiled, true)
            .iter()
            .map(|&n| format!("{}:{}", g.name(n).unwrap_or(""), g.string_value(n)))
            .collect();
        let xq: Vec<String> = xquery_trace(&g, &path, true)
            .split('\u{1}')
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        prop_assert_eq!(xp, xq, "engines disagree under the optimizer on `{}`", path);
    }

    /// Round-2 rewrites (containment-chain joins, existential probes,
    /// hoisting) stay invisible on paths built to trigger them: `//a//b`
    /// chains carrying boolean-axis predicate lists, through both
    /// engines, against the as-written oracle.
    #[test]
    fn chain_joins_and_probes_are_invisible(cfg in arb_config(), path in arb_chain_path()) {
        let g = generate(&cfg).build_goddag();
        let idx = StructIndex::build(&g);
        let compiled = CompiledXPath::compile(&path).unwrap();

        let base = xpath_nodes(&g, &idx, &compiled, false);
        let opt = xpath_nodes(&g, &idx, &compiled, true);
        prop_assert_eq!(&base, &opt, "xpath optimized vs as-written on `{}`", path);
        for w in opt.windows(2) {
            prop_assert_eq!(g.cmp_order(w[0], w[1]), std::cmp::Ordering::Less);
        }

        let q_base = xquery_trace(&g, &path, false);
        let q_opt = xquery_trace(&g, &path, true);
        prop_assert_eq!(&q_base, &q_opt, "xquery optimized vs as-written on `{}`", path);
    }
}

// ----------------------------------------------------------------------
// Positional-semantics regression table
// ----------------------------------------------------------------------

/// Pages + words over the text `aaa bbb ccc`, with the page break placed
/// *inside* the second word: `bbb` straddles the boundary, so it has no
/// `xancestor::p` while `aaa` and `ccc` do.
fn paged() -> Goddag {
    GoddagBuilder::new()
        .hierarchy("pages", "<r><p>aaa bb</p><p>b ccc</p></r>")
        .hierarchy("words", "<r><w>aaa</w> <w>bbb</w> <w>ccc</w></r>")
        .build()
        .unwrap()
}

/// Hand-computed answers for queries mixing positional and structural
/// predicates. The optimizer must never reorder across a positional
/// predicate — `w[2][xancestor::p]` (empty: `bbb` straddles the page
/// break) and `w[xancestor::p][2]` (`ccc`) are different queries.
#[test]
fn positional_semantics_pinned() {
    let g = paged();
    let idx = StructIndex::build(&g);
    let table: &[(&str, &[&str])] = &[
        ("/descendant::w[position() = 2]", &["bbb"]),
        ("/descendant::w[2]", &["bbb"]),
        ("/descendant::w[last()]", &["ccc"]),
        ("/descendant::w[xancestor::p]", &["aaa", "ccc"]),
        // positional after structural: filter first, then index.
        ("/descendant::w[xancestor::p][2]", &["ccc"]),
        ("/descendant::w[xancestor::p][position() = 1]", &["aaa"]),
        // structural after positional: index first, then filter — the
        // second word straddles the page break, so nothing survives.
        ("/descendant::w[2][xancestor::p]", &[]),
        ("/descendant::w[last()][xancestor::p]", &["ccc"]),
        // `//w[2]` is "second w-child of each parent", not fusable.
        ("//w[2]", &["bbb"]),
        // filter-expression predicates follow the same rules.
        ("(/descendant::w)[2]", &["bbb"]),
        ("(/descendant::w[xancestor::p])[last()]", &["ccc"]),
    ];
    for (src, expected) in table {
        let compiled = CompiledXPath::compile(src).unwrap();
        for optimize in [false, true] {
            let got: Vec<String> = xpath_nodes(&g, &idx, &compiled, optimize)
                .iter()
                .map(|&n| g.string_value(n).to_string())
                .collect();
            assert_eq!(
                &got.iter().map(String::as_str).collect::<Vec<_>>(),
                expected,
                "`{src}` with optimize={optimize}"
            );
        }
        // And through the XQuery evaluator, both knob settings.
        for optimize in [false, true] {
            let got = xquery_trace(&g, src, optimize);
            let words: Vec<&str> = got
                .split('\u{1}')
                .filter(|s| !s.is_empty())
                .map(|s| s.split_once(':').unwrap().1)
                .collect();
            assert_eq!(&words, expected, "xquery `{src}` with optimize={optimize}");
        }
    }
}

/// The fusion rewrite really fires on this corpus and stays invisible:
/// `//w` (two desugared walks) equals `/descendant::w`, and the engine
/// counters prove the optimized run used a rewritten plan.
#[test]
fn fusion_equivalence_and_counters() {
    let g = paged();
    let idx = StructIndex::build(&g);
    let compiled = CompiledXPath::compile("//w[xancestor::p]").unwrap();
    assert!(compiled.report().fused_steps >= 1);
    assert!(compiled.report().batch_routed_steps >= 1);

    let k = EvalCounters::default();
    let v = compiled.evaluate_with(&g, &idx, &Context::new(NodeId::Root), true, &k).unwrap();
    let Value::Nodes(ns) = v else { panic!() };
    assert_eq!(ns.len(), 2);
    assert!(k.batched_steps.get() >= 1, "fused step took the batch path");
    assert!(k.rewritten_steps.get() >= 1);

    // As-written plan: same result, nothing rewritten.
    let k0 = EvalCounters::default();
    let v0 = compiled.evaluate_with(&g, &idx, &Context::new(NodeId::Root), false, &k0).unwrap();
    assert_eq!(v0, Value::Nodes(ns));
    assert_eq!(k0.rewritten_steps.get(), 0);
}

/// A single-hierarchy corpus where `p` really contains `w` in the tree —
/// `//p//w` has non-trivial answers, unlike the cross-hierarchy [`paged`].
fn nested() -> Goddag {
    GoddagBuilder::new()
        .hierarchy("doc", "<r><p><w>aaa</w> <w>bbb</w></p> <w>ccc</w></r>")
        .build()
        .unwrap()
}

/// Existential early-exit must NOT fire where it would change semantics:
/// a numeric-typed predicate (`count(...)` is a position shorthand) and a
/// positional predicate pin the step to the per-candidate path, and the
/// runtime counter stays at zero. The boolean-axis control fires.
#[test]
fn early_exit_fires_only_on_boolean_axis_predicates() {
    let g = paged();
    let idx = StructIndex::build(&g);

    for src in [
        // count(...) is numeric: [count(xfollowing::p)] means position().
        "/descendant::w[count(xfollowing::p)]",
        // positional context: the probe annotation must not cross [2].
        "/descendant::w[2][xancestor::p]",
    ] {
        let compiled = CompiledXPath::compile(src).unwrap();
        assert_eq!(compiled.report().existential_probes, 0, "`{src}` must not be annotated");
        let k = EvalCounters::default();
        compiled.evaluate_with(&g, &idx, &Context::new(NodeId::Root), true, &k).unwrap();
        assert_eq!(k.early_exit_steps.get(), 0, "`{src}` must not probe");
    }

    let compiled = CompiledXPath::compile("/descendant::w[xancestor::p]").unwrap();
    assert!(compiled.report().existential_probes >= 1);
    let k = EvalCounters::default();
    let v = compiled.evaluate_with(&g, &idx, &Context::new(NodeId::Root), true, &k).unwrap();
    let Value::Nodes(ns) = v else { panic!() };
    assert_eq!(ns.len(), 2);
    assert!(k.early_exit_steps.get() >= 1, "the boolean-axis control must probe");

    // Knob off: same nodes, no probes counted.
    let k0 = EvalCounters::default();
    let v0 = compiled.evaluate_with(&g, &idx, &Context::new(NodeId::Root), false, &k0).unwrap();
    assert_eq!(v0, Value::Nodes(ns));
    assert_eq!(k0.early_exit_steps.get(), 0);
}

/// The chain-join and hoist rewrites fire on corpora built for them, stay
/// invisible in the results, and surface in the runtime counters.
#[test]
fn chain_join_and_hoist_counters() {
    let g = nested();
    let idx = StructIndex::build(&g);

    let chain = CompiledXPath::compile("//p//w").unwrap();
    assert_eq!(chain.report().chain_join_steps, 1);
    let k = EvalCounters::default();
    let v = chain.evaluate_with(&g, &idx, &Context::new(NodeId::Root), true, &k).unwrap();
    let Value::Nodes(ns) = v else { panic!() };
    assert_eq!(ns.len(), 2, "aaa and bbb sit under p; ccc does not");
    assert!(k.chain_joins.get() >= 1);
    let k0 = EvalCounters::default();
    let v0 = chain.evaluate_with(&g, &idx, &Context::new(NodeId::Root), false, &k0).unwrap();
    assert_eq!(v0, Value::Nodes(ns));
    assert_eq!(k0.chain_joins.get(), 0);

    let hoist = CompiledXPath::compile("/descendant::w[count(/descendant::p) > 0]").unwrap();
    assert!(hoist.report().hoisted_predicates >= 1);
    let k = EvalCounters::default();
    let v = hoist.evaluate_with(&g, &idx, &Context::new(NodeId::Root), true, &k).unwrap();
    let Value::Nodes(ns) = v else { panic!() };
    assert_eq!(ns.len(), 3, "the hoisted predicate is true for every w");
    assert!(k.hoisted_preds.get() >= 1);
    let k0 = EvalCounters::default();
    let v0 = hoist.evaluate_with(&g, &idx, &Context::new(NodeId::Root), false, &k0).unwrap();
    assert_eq!(v0, Value::Nodes(ns));
    assert_eq!(k0.hoisted_preds.get(), 0);

    // Same queries through the XQuery engine, both knob settings.
    for src in ["//p//w", "/descendant::w[count(/descendant::p) > 0]"] {
        assert_eq!(xquery_trace(&g, src, true), xquery_trace(&g, src, false), "`{src}`");
    }
}
