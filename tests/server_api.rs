//! Integration tests for the `mhxd` wire protocol: a real server on an
//! ephemeral loopback port, real TCP clients (the `server::client`
//! module plus raw requests), concurrency, error-status mapping,
//! keep-alive reuse, prepared handles, and graceful shutdown.

use mhx_json::Json;
use multihier_xquery::prelude::*;
use multihier_xquery::server::client::{Client, ClientError};
use multihier_xquery::server::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// The two-hierarchy manuscript the engine tests use; the split word
/// `singallice` gives the extended axes something to find.
fn manuscript() -> Goddag {
    GoddagBuilder::new()
        .hierarchy(
            "lines",
            "<r><line>gesceaftum unawendendne sin</line><line>gallice sibbe gecynde þa</line></r>",
        )
        .hierarchy(
            "words",
            "<r><w>gesceaftum</w> <w>unawendendne</w> <w>singallice</w> <w>sibbe</w> \
             <w>gecynde</w> <w>þa</w></r>",
        )
        .build()
        .unwrap()
}

/// A second manuscript with a different shape (so per-document answers
/// differ and cross-document cache sharing is observable).
fn manuscript_b() -> Goddag {
    GoddagBuilder::new()
        .hierarchy("lines", "<r><line>sibbe ge</line><line>cynde</line></r>")
        .hierarchy("words", "<r><w>sibbe</w> <w>gecynde</w></r>")
        .build()
        .unwrap()
}

fn boot(workers: usize) -> Server {
    let catalog = Arc::new(Catalog::new());
    catalog.insert("ms-a", manuscript());
    catalog.insert("ms-b", manuscript_b());
    let config = ServerConfig {
        workers,
        poll_interval: Duration::from_millis(10),
        ..ServerConfig::default()
    };
    Server::bind(catalog, "127.0.0.1:0", config).expect("bind ephemeral port")
}

fn connect(server: &Server) -> Client {
    Client::connect(&server.addr().to_string()).expect("connect")
}

#[test]
fn eight_concurrent_clients_mixed_workload() {
    let server = boot(8);
    let addr = server.addr().to_string();

    let handles: Vec<_> = (0..8)
        .map(|i| {
            let addr = addr.clone();
            thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                // Half the clients pin ms-a, half ms-b; all mix languages
                // and exercise a prepared handle across requests.
                let (doc, words) = if i % 2 == 0 { ("ms-a", 6) } else { ("ms-b", 2) };
                let handle =
                    client.prepare(QueryLang::XQuery, "count(/descendant::w)").expect("prepare");
                for round in 0..10 {
                    let out = client.xpath(doc, "/descendant::w[overlapping::line]").unwrap();
                    assert_eq!(out.kind, "nodes");
                    // One word straddles the line break in each document:
                    // `singallice` in ms-a, `gecynde` in ms-b.
                    assert_eq!(out.count, Some(1), "round {round} on {doc}");
                    let straddler =
                        if doc == "ms-a" { "<w>singallice</w>" } else { "<w>gecynde</w>" };
                    assert_eq!(out.serialized, straddler);

                    let out = client
                        .xquery(doc, "for $l in /descendant::line return string($l)")
                        .unwrap();
                    assert_eq!(out.kind, "markup");
                    let expected_text = if doc == "ms-a" {
                        "gesceaftum unawendendne singallice sibbe gecynde þa"
                    } else {
                        "sibbe gecynde"
                    };
                    assert_eq!(out.serialized, expected_text);

                    let out = client.execute(handle, Some(doc)).unwrap();
                    assert_eq!(out.serialized, words.to_string());
                }
                client
            })
        })
        .collect();
    // Keep every client's connection alive until all threads finish, so
    // the 8 connections genuinely overlap.
    let clients: Vec<Client> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    drop(clients);

    let stats = server.stats();
    assert_eq!(stats.connections_accepted, 8, "one connection per client");
    assert_eq!(stats.requests, 8 * (1 + 30), "8 clients × (prepare + 10×3 queries)");
    // One compilation per distinct text serves both documents and all
    // eight connections.
    let cache = server.catalog().cache_stats();
    assert_eq!(cache.misses, 3, "three distinct query texts");
    assert!(cache.cross_doc_hits > 0, "{cache:?}");
    assert!(server.shutdown());
}

#[test]
fn engine_errors_map_to_typed_statuses() {
    let server = boot(2);
    let mut client = connect(&server);

    let body = |entries: Vec<(&str, Json)>| {
        Json::Obj(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    };
    let query_body = |lang: &str, query: &str| {
        body(vec![
            ("doc", Json::Str("ms-a".into())),
            ("lang", Json::Str(lang.into())),
            ("query", Json::Str(query.into())),
        ])
    };
    let error_kind = |json: &Json| {
        json.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };

    // Parse error → 400, kind `parse`, language attached (the byte
    // offset rides along when the parser reports one).
    let (status, json) =
        client.request("POST", "/query", Some(&query_body("xpath", "/descendant::"))).unwrap();
    assert_eq!(status, 400);
    assert_eq!(error_kind(&json), "parse");
    let err = json.get("error").unwrap();
    assert_eq!(err.get("lang").and_then(Json::as_str), Some("xpath"));

    // Static compile error (unbound variable) → 400, kind `compile`.
    let (status, json) =
        client.request("POST", "/query", Some(&query_body("xquery", "$undefined"))).unwrap();
    assert_eq!(status, 400);
    assert_eq!(error_kind(&json), "compile");

    // Dynamic evaluation error → 422.
    let (status, json) =
        client.request("POST", "/query", Some(&query_body("xquery", "1 idiv 0"))).unwrap();
    assert_eq!(status, 422);
    assert_eq!(error_kind(&json), "eval");

    // Unknown document → 404.
    let (status, json) = client
        .request(
            "POST",
            "/query",
            Some(&body(vec![
                ("doc", Json::Str("nowhere".into())),
                ("query", Json::Str("1 + 1".into())),
            ])),
        )
        .unwrap();
    assert_eq!(status, 404);
    assert_eq!(error_kind(&json), "unknown_document");

    // Malformed document upload → 400, kind `document`.
    let (status, json) = client
        .request(
            "PUT",
            "/documents/bad",
            Some(&body(vec![(
                "hierarchies",
                Json::Arr(vec![Json::Obj(vec![
                    ("name".into(), Json::Str("w".into())),
                    ("xml".into(), Json::Str("<r><w>unclosed".into())),
                ])]),
            )])),
        )
        .unwrap();
    assert_eq!(status, 400);
    assert_eq!(error_kind(&json), "document");

    // Protocol-level failures: bad JSON, missing field, unknown handle,
    // unknown route, wrong method.
    let (status, _) =
        client.request("POST", "/query", Some(&Json::Str("not an object".into()))).unwrap();
    assert_eq!(status, 400);
    let (status, json) = client.request("POST", "/query", Some(&body(vec![]))).unwrap();
    assert_eq!(status, 400);
    assert_eq!(error_kind(&json), "bad_request");
    let (status, json) =
        client.request("POST", "/execute", Some(&body(vec![("handle", Json::Num(99.0))]))).unwrap();
    assert_eq!(status, 404);
    assert_eq!(error_kind(&json), "unknown_handle");
    let (status, json) = client.request("GET", "/nope", None).unwrap();
    assert_eq!(status, 404);
    assert_eq!(error_kind(&json), "not_found");
    let (status, json) = client.request("DELETE", "/query", None).unwrap();
    assert_eq!(status, 405);
    assert_eq!(error_kind(&json), "method_not_allowed");

    // Prepared statements are bounded per connection; the 257th is
    // refused with a typed protocol error.
    for _ in 0..256 {
        client.prepare(QueryLang::XPath, "/descendant::w").unwrap();
    }
    match client.prepare(QueryLang::XPath, "/descendant::w") {
        Err(ClientError::Server { status: 400, kind, .. }) => {
            assert_eq!(kind, "too_many_prepared")
        }
        other => panic!("expected the prepared cap, got {other:?}"),
    }

    // The connection survived every error — all exchanges above reused it.
    assert_eq!(server.stats().connections_accepted, 1);
    assert!(server.shutdown());
}

/// The shard router extends the status table with `502`/`bad_gateway`:
/// "every replica of this document is unreachable or draining" — distinct
/// from one backend's retryable `503`/`shutting_down` drain signal.
#[test]
fn router_maps_exhausted_replicas_to_bad_gateway() {
    use multihier_xquery::server::{BackendPool, Router, RouterConfig};

    let server = boot(2);
    let pool = Arc::new(BackendPool::new(vec![server.addr().to_string()], 1));
    let router = Router::bind(pool, "127.0.0.1:0", RouterConfig::default()).unwrap();
    let mut via_router = Client::connect(&router.addr().to_string()).unwrap();

    // Pass-through: a routed query answers exactly like a direct one…
    let out = via_router.xpath("ms-a", "count(/descendant::w)").unwrap();
    assert_eq!(out.serialized, "6");
    // …and a deterministic 4xx surfaces verbatim, and is not retryable.
    let err = via_router.xpath("ms-a", "/descendant::").unwrap_err();
    match &err {
        ClientError::Server { status: 400, kind, .. } => assert_eq!(kind, "parse"),
        other => panic!("expected the parse error, got {other:?}"),
    }
    assert!(!err.is_retryable());

    // Drain the lone backend. Directly, clients see the retryable typed
    // drain signal; through the router the replica set is exhausted,
    // which is the distinct final 502.
    server.catalog().begin_shutdown();
    let mut direct = connect(&server);
    let err = direct.xpath("ms-a", "count(/descendant::w)").unwrap_err();
    match &err {
        ClientError::Server { status: 503, kind, .. } => assert_eq!(kind, "shutting_down"),
        other => panic!("expected the drain signal, got {other:?}"),
    }
    assert!(err.is_retryable(), "shutting_down means: retry another replica");

    let err = via_router.xpath("ms-a", "count(/descendant::w)").unwrap_err();
    match &err {
        ClientError::Server { status: 502, kind, message } => {
            assert_eq!(kind, "bad_gateway");
            assert!(message.contains("replicas unavailable"), "{message}");
        }
        other => panic!("expected bad_gateway, got {other:?}"),
    }
    assert!(!err.is_retryable(), "502 means every replica was already tried");

    router.shutdown();
    assert!(server.shutdown());
}

#[test]
fn keepalive_reuses_one_connection_and_sessions_show_in_stats() {
    let server = boot(4);
    let mut busy = connect(&server);

    for _ in 0..5 {
        busy.xpath("ms-a", "/descendant::w").unwrap();
    }
    // A second connection observes the first one's per-session counters.
    let mut observer = connect(&server);
    let stats = observer.stats().unwrap();
    let sessions = stats
        .get("server")
        .and_then(|s| s.get("sessions"))
        .and_then(Json::as_arr)
        .expect("sessions list");
    assert_eq!(sessions.len(), 2, "busy + observer are both active");
    let busy_row = sessions
        .iter()
        .find(|s| s.get("doc").and_then(Json::as_str) == Some("ms-a"))
        .expect("busy session row");
    assert_eq!(busy_row.get("requests").and_then(Json::as_u64), Some(5));
    let batched = busy_row.get("batched_steps").and_then(Json::as_u64).unwrap();
    assert!(batched > 0, "per-session eval counters are live: {busy_row:?}");
    // Engine totals cover at least the session's counters.
    let eval_total = stats.get("eval").and_then(|e| e.get("batched_steps")).and_then(Json::as_u64);
    assert!(eval_total.unwrap() >= batched);

    // 5 queries + 1 stats call rode on exactly two TCP connections.
    assert_eq!(server.stats().connections_accepted, 2);
    assert!(server.shutdown());
}

#[test]
fn explain_renders_plans_over_the_wire_and_probe_counters_surface() {
    let server = boot(2);
    let mut client = connect(&server);

    // `explain: true` returns the rendered plan instead of a result.
    let text = client.explain(Some("ms-a"), QueryLang::XPath, "//w[xfollowing::line]").unwrap();
    assert!(text.contains("existential probe"), "{text}");
    assert!(text.contains("est "), "{text}");
    assert!(text.contains("actual "), "{text}");
    let text = client.explain(Some("ms-a"), QueryLang::XQuery, "//w[xfollowing::line]").unwrap();
    assert!(text.contains("existential probe"), "{text}");

    // A mistyped `explain` is a protocol error, not a silent query.
    let body = Json::Obj(vec![
        ("query".into(), Json::Str("//w".into())),
        ("explain".into(), Json::Str("yes".into())),
    ]);
    let (status, _) = client.request("POST", "/query", Some(&body)).unwrap();
    assert_eq!(status, 400);

    // Running the probed query bumps the new counters in /stats, both in
    // the engine totals and the per-session row.
    client.xpath("ms-a", "/descendant::w[xfollowing::line]").unwrap();
    let stats = client.stats().unwrap();
    let eval = stats.get("eval").expect("eval object");
    assert!(eval.get("early_exit_steps").and_then(Json::as_u64).unwrap() >= 1, "{eval:?}");
    let sessions = stats
        .get("server")
        .and_then(|s| s.get("sessions"))
        .and_then(Json::as_arr)
        .expect("sessions list");
    let row = sessions
        .iter()
        .find(|s| s.get("doc").and_then(Json::as_str) == Some("ms-a"))
        .expect("session row");
    assert!(row.get("early_exit_steps").and_then(Json::as_u64).unwrap() >= 1, "{row:?}");
    assert!(server.shutdown());
}

#[test]
fn documents_can_be_uploaded_listed_and_queried() {
    let server = boot(2);
    let mut client = connect(&server);

    assert_eq!(client.documents().unwrap(), vec!["ms-a".to_string(), "ms-b".to_string()]);
    client
        .put_document(
            "uploaded",
            &[
                ("lines", "<r><line>ab</line><line>cd</line></r>"),
                ("words", "<r><w>a</w><w>bcd</w></r>"),
            ],
        )
        .unwrap();
    assert_eq!(client.documents().unwrap().len(), 3);
    let out = client.xpath("uploaded", "/descendant::w[overlapping::line]").unwrap();
    assert_eq!(out.count, Some(1));
    assert_eq!(out.serialized, "<w>bcd</w>");
    assert!(server.shutdown());
}

#[test]
fn options_are_per_connection_on_the_wire() {
    let server = boot(4);
    let mut paper = connect(&server);
    let mut xslt = connect(&server);

    let q = "serialize(analyze-string((/descendant::w)[2], '.*unawe.*'))";
    let patch = Json::Obj(vec![("analyze_mode".into(), Json::Str("xslt".into()))]);
    let greedy = xslt.query_with(Some("ms-a"), QueryLang::XQuery, q, Some(&patch)).unwrap();
    assert_eq!(greedy.serialized, "<res><m>unawendendne</m></res>");
    // The other connection keeps paper-compat semantics on the same text.
    let shortest = paper.xquery("ms-a", q).unwrap();
    assert_eq!(shortest.serialized, "<res><m>unawe</m>ndendne</res>");
    // One compilation served both connections.
    assert_eq!(server.catalog().cache_stats().misses, 1);
    assert!(server.shutdown());
}

#[test]
fn graceful_shutdown_never_truncates_a_response() {
    let server = boot(4);
    let addr = server.addr().to_string();
    let expected = "gesceaftum unawendendne singallice sibbe gecynde þa";

    let handles: Vec<_> = (0..6)
        .map(|_| {
            let addr = addr.clone();
            thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let mut completed = 0u32;
                loop {
                    match client.xquery("ms-a", "for $l in /descendant::line return string($l)") {
                        Ok(out) => {
                            // Every 200 body is complete and correct.
                            assert_eq!(out.serialized, expected);
                            completed += 1;
                        }
                        // Draining: either a whole 503 envelope or a clean
                        // connection close between requests.
                        Err(ClientError::Server { status: 503, kind, .. }) => {
                            assert_eq!(kind, "shutting_down");
                            break;
                        }
                        Err(ClientError::Io(_)) => break,
                        // A Protocol error would mean a truncated or
                        // malformed response — exactly what graceful
                        // shutdown must never produce.
                        Err(other) => panic!("non-clean failure during drain: {other}"),
                    }
                }
                completed
            })
        })
        .collect();

    thread::sleep(Duration::from_millis(50));
    let catalog = Arc::clone(server.catalog());
    assert!(server.shutdown(), "engine drained to zero in-flight");
    let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0, "clients completed work before the drain");
    assert_eq!(catalog.in_flight(), 0);
    assert!(catalog.is_shutting_down());
    assert!(matches!(catalog.xquery("ms-a", "1 + 1"), Err(EngineError::ShuttingDown)));
}

#[test]
fn shutdown_endpoint_requests_the_drain() {
    let server = boot(2);
    let mut client = connect(&server);
    assert!(!server.shutdown_requested());
    client.shutdown_server().unwrap();
    assert!(server.shutdown_requested(), "POST /shutdown reached the owner");
    assert!(server.shutdown());
}

#[test]
fn drain_under_an_idle_keep_alive_fleet_is_prompt_and_complete() {
    let server = boot(4);

    // Park a fleet of idle keep-alive connections, far beyond the worker
    // count: under the evented front end they hold table entries, not
    // threads, and a drain must close them without waiting on timeouts.
    let mut fleet: Vec<TcpStream> = (0..120)
        .map(|_| {
            let s = TcpStream::connect(server.addr()).expect("park connection");
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            s
        })
        .collect();
    let t0 = Instant::now();
    while server.stats().active_connections < 120 {
        assert!(t0.elapsed() < Duration::from_secs(5), "fleet never fully accepted");
        thread::sleep(Duration::from_millis(10));
    }

    // Half the fleet has sent part of a request — drain must not wait for
    // the rest of those bytes either.
    for s in fleet.iter_mut().take(60) {
        s.write_all(b"POST /query HTTP/1.1\r\nContent-Le").unwrap();
    }

    // Active clients keep querying right up to (and across) the drain.
    let addr = server.addr().to_string();
    let hammers: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                let mut completed = 0u32;
                loop {
                    match client.xpath("ms-a", "count(/descendant::w)") {
                        Ok(out) => {
                            assert_eq!(out.serialized, "6");
                            completed += 1;
                        }
                        Err(ClientError::Server { status: 503, .. }) | Err(ClientError::Io(_)) => {
                            break
                        }
                        Err(other) => panic!("non-clean failure during drain: {other}"),
                    }
                }
                completed
            })
        })
        .collect();
    thread::sleep(Duration::from_millis(50));

    let t0 = Instant::now();
    assert!(server.shutdown(), "drained cleanly under the idle fleet");
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "shutdown stalled on idle connections: {:?}",
        t0.elapsed()
    );
    let total: u32 = hammers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0, "active clients completed work before the drain");

    // Every parked connection was closed server-side: a clean EOF, not a
    // hang and not a truncated response.
    for s in &mut fleet {
        let mut buf = [0u8; 64];
        assert_eq!(s.read(&mut buf).expect("fleet socket readable"), 0, "expected EOF");
    }
}
