//! Protocol torture tests for the evented front end: raw TCP clients
//! that split, trickle, pipeline, oversize, and abandon requests in
//! every way the incremental parser and connection table must survive.
//! The well-behaved-client paths live in `server_api.rs`; this suite is
//! the adversarial complement.

use mhx_json::Json;
use multihier_xquery::prelude::*;
use multihier_xquery::server::client::Client;
use multihier_xquery::server::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

fn boot(config: ServerConfig) -> Server {
    let catalog = Arc::new(Catalog::new());
    catalog.insert(
        "ms",
        GoddagBuilder::new().hierarchy("w", "<r><w>a</w> <w>b</w> <w>c</w></r>").build().unwrap(),
    );
    Server::bind(catalog, "127.0.0.1:0", config).expect("bind ephemeral port")
}

fn quick_config(workers: usize) -> ServerConfig {
    ServerConfig { workers, poll_interval: Duration::from_millis(5), ..ServerConfig::default() }
}

/// One `/query` request as raw bytes, with an arithmetic query whose
/// serialized answer identifies it (`{n}+{n}` → `2n`).
fn query_request(n: u64, close: bool) -> Vec<u8> {
    let body = format!(r#"{{"doc":"ms","query":"{n} + {n}"}}"#);
    format!(
        "POST /query HTTP/1.1\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: {}\r\n\r\n{body}",
        body.len(),
        if close { "close" } else { "keep-alive" },
    )
    .into_bytes()
}

/// A raw keep-alive connection that reads `Content-Length`-framed
/// responses one at a time.
struct RawConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl RawConn {
    fn connect(server: &Server) -> RawConn {
        let stream = TcpStream::connect(server.addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.set_nodelay(true).unwrap();
        RawConn { stream, buf: Vec::new() }
    }

    fn send(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("send");
    }

    /// Read exactly one response; `None` on a clean EOF before any bytes
    /// of it arrived.
    fn try_read_response(&mut self) -> Option<(u16, String)> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(he) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = String::from_utf8_lossy(&self.buf[..he]).to_string();
                let status: u16 = head
                    .split_whitespace()
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("malformed status line in {head:?}"));
                let len: usize = head
                    .lines()
                    .filter_map(|l| {
                        l.to_ascii_lowercase()
                            .strip_prefix("content-length:")
                            .and_then(|v| v.trim().parse().ok())
                    })
                    .next()
                    .expect("response has Content-Length");
                if self.buf.len() >= he + 4 + len {
                    let body = String::from_utf8_lossy(&self.buf[he + 4..he + 4 + len]).to_string();
                    self.buf.drain(..he + 4 + len);
                    return Some((status, body));
                }
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    assert!(self.buf.is_empty(), "EOF mid-response: {:?}", self.buf);
                    return None;
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) => panic!("read: {e}"),
            }
        }
    }

    fn read_response(&mut self) -> (u16, String) {
        self.try_read_response().expect("peer closed before responding")
    }
}

fn serialized_of(body: &str) -> String {
    let json = mhx_json::parse(body).expect("JSON body");
    json.get("serialized").and_then(Json::as_str).unwrap_or_default().to_string()
}

#[test]
fn a_byte_at_a_time_request_parses_and_keep_alive_survives() {
    let server = boot(quick_config(2));
    let mut conn = RawConn::connect(&server);

    // Two byte-trickled requests on one connection: the parser resumes
    // its scan incrementally, and the connection stays reusable.
    for n in [3u64, 4] {
        for byte in query_request(n, false) {
            conn.send(&[byte]);
        }
        let (status, body) = conn.read_response();
        assert_eq!(status, 200, "{body}");
        assert_eq!(serialized_of(&body), (2 * n).to_string());
    }
    assert_eq!(server.stats().connections_accepted, 1);
    assert!(server.shutdown());
}

#[test]
fn a_request_split_at_every_boundary_parses_identically() {
    let server = boot(quick_config(2));
    let mut conn = RawConn::connect(&server);
    let request = query_request(5, false);

    // Force a real read boundary at every byte offset — including inside
    // the `\r\n\r\n` terminator and inside the body.
    for split in 1..request.len() {
        conn.send(&request[..split]);
        thread::sleep(Duration::from_millis(1));
        conn.send(&request[split..]);
        let (status, body) = conn.read_response();
        assert_eq!(status, 200, "split at {split}: {body}");
        assert_eq!(serialized_of(&body), "10", "split at {split}");
    }
    assert_eq!(server.stats().connections_accepted, 1, "one connection served every split");
    assert!(server.shutdown());
}

#[test]
fn a_pipelined_burst_answers_in_request_order() {
    let server = boot(quick_config(4));
    let mut conn = RawConn::connect(&server);

    // 16 requests in one TCP write; responses must come back in arrival
    // order even though 4 workers execute concurrently elsewhere.
    let burst: Vec<u8> = (1..=16u64).flat_map(|n| query_request(n, false)).collect();
    conn.send(&burst);
    for n in 1..=16u64 {
        let (status, body) = conn.read_response();
        assert_eq!(status, 200, "{body}");
        assert_eq!(serialized_of(&body), (2 * n).to_string(), "response {n} out of order");
    }
    assert!(
        server.stats().pipelined_requests > 0,
        "the burst registered as pipelining: {:?}",
        server.stats()
    );
    assert!(server.shutdown());
}

#[test]
fn connection_close_mid_pipeline_cuts_the_tail_cleanly() {
    let server = boot(quick_config(2));
    let mut conn = RawConn::connect(&server);

    // Three pipelined requests; the second says `Connection: close`.
    let mut burst = query_request(1, false);
    burst.extend(query_request(2, true));
    burst.extend(query_request(3, false));
    conn.send(&burst);

    let (status, body) = conn.read_response();
    assert_eq!(status, 200);
    assert_eq!(serialized_of(&body), "2");
    let (status, body) = conn.read_response();
    assert_eq!(status, 200);
    assert_eq!(serialized_of(&body), "4");
    // The third request is after the close: the connection ends with a
    // clean EOF, never a truncated or extra response.
    assert!(conn.try_read_response().is_none(), "clean close after the Connection: close reply");

    // And the server is still fine for new clients.
    let mut client = Client::connect(&server.addr().to_string()).unwrap();
    assert_eq!(client.xpath("ms", "count(/descendant::w)").unwrap().serialized, "3");
    assert!(server.shutdown());
}

#[test]
fn a_slow_loris_half_request_starves_nobody_and_times_out() {
    let server = boot(ServerConfig {
        workers: 2,
        poll_interval: Duration::from_millis(5),
        request_timeout: Duration::from_millis(400),
        ..ServerConfig::default()
    });

    // The loris: half a request head, then silence.
    let mut loris = RawConn::connect(&server);
    loris.send(b"POST /query HTTP/1.1\r\nContent-Le");

    // Meanwhile a well-behaved client on the same 2-worker server runs a
    // full workload unimpeded — the loris holds a table entry, never a
    // worker.
    let mut client = Client::connect(&server.addr().to_string()).unwrap();
    for _ in 0..20 {
        assert_eq!(client.xpath("ms", "count(/descendant::w)").unwrap().serialized, "3");
    }

    // The loris is eventually 408'd and disconnected, not kept forever.
    let (status, body) = loris.read_response();
    assert_eq!(status, 408, "{body}");
    assert!(body.contains("timeout"), "{body}");
    assert!(loris.try_read_response().is_none(), "connection closed after the 408");
    assert!(server.shutdown());
}

#[test]
fn an_oversized_declared_body_is_rejected_without_reading_it() {
    let server = boot(ServerConfig {
        workers: 2,
        poll_interval: Duration::from_millis(5),
        max_body: 1024,
        ..ServerConfig::default()
    });
    let mut conn = RawConn::connect(&server);

    // Declare a 10 MB body but send none of it: the 413 must arrive off
    // the head alone, not after the server slurped 10 MB.
    let t0 = Instant::now();
    conn.send(
        b"POST /query HTTP/1.1\r\nContent-Type: application/json\r\n\
          Content-Length: 10485760\r\n\r\n",
    );
    let (status, body) = conn.read_response();
    assert_eq!(status, 413, "{body}");
    assert!(body.contains("too_large"), "{body}");
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "rejected from the declared length, not by reading: {:?}",
        t0.elapsed()
    );
    assert!(conn.try_read_response().is_none(), "connection closed after the 413");
    assert!(server.shutdown());
}

#[test]
fn abrupt_mid_request_disconnects_leak_no_connections() {
    let server = boot(quick_config(2));
    assert_eq!(server.stats().active_connections, 0);

    // A mix of abandonment: half-heads, half-bodies, and one full
    // request whose client vanishes before reading the response.
    for i in 0..6 {
        let mut conn = RawConn::connect(&server);
        match i % 3 {
            0 => conn.send(b"POST /query HTTP/1.1\r\nConte"),
            1 => conn.send(&query_request(7, false)[..40]),
            _ => conn.send(&query_request(7, false)),
        }
        drop(conn); // RST/FIN mid-request
    }

    // Every accepted entry (and its session state) is reclaimed. A closed
    // client still sits in the accept backlog, so first wait for all six
    // accepts to land, then for the table to drain back to zero.
    let t0 = Instant::now();
    loop {
        let stats = server.stats();
        if stats.connections_accepted == 6 && stats.active_connections == 0 {
            break;
        }
        assert!(t0.elapsed() < Duration::from_secs(5), "connections leaked: {stats:?}");
        thread::sleep(Duration::from_millis(10));
    }

    // The /stats sessions list agrees with the counter (no ghost rows).
    let mut client = Client::connect(&server.addr().to_string()).unwrap();
    let stats = client.stats().unwrap();
    let sessions = stats
        .get("server")
        .and_then(|s| s.get("sessions"))
        .and_then(Json::as_arr)
        .expect("sessions list");
    assert_eq!(sessions.len(), 1, "only the observer remains: {stats}");
    assert!(server.shutdown());
}
