//! Multi-process integration tests for the `mhxr` shard router: real
//! `mhxd` shard processes and a real `mhxr` router process talking over
//! real TCP (spawned via the `CARGO_BIN_EXE_*` paths cargo provides to
//! integration tests). This is the deployment shape CI gates on —
//! routing determinism, scatter/gather merges, kill-one-shard failover
//! onto replicas, and a graceful shard drain that never truncates a
//! client response.

use mhx_json::Json;
use multihier_xquery::server::client::{Client, ClientError};
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Read};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A spawned daemon plus the address it reported on stderr.
struct Proc {
    child: Child,
    addr: String,
}

impl Proc {
    /// Hard kill (SIGKILL) — the "shard machine died" failure mode.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Wait for a clean exit, failing the test on a timeout or a
    /// non-zero status — the graceful-drain success mode.
    fn wait_clean(mut self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        loop {
            match self.child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(status.success(), "process exited uncleanly: {status}");
                    return;
                }
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    panic!("process did not exit within {timeout:?}");
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

impl Drop for Proc {
    fn drop(&mut self) {
        // Failed tests must not leak daemons; kill after wait is a no-op.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawn `bin`, parse the ephemeral bound address from its startup line
/// (`… on http://ADDR …`), and keep draining stderr in the background so
/// the child never blocks on a full pipe.
fn spawn(bin: &str, args: &[String]) -> Proc {
    let mut child = Command::new(bin)
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn daemon");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut reader = BufReader::new(stderr);
    let mut addr = None;
    let mut line = String::new();
    while reader.read_line(&mut line).unwrap_or(0) > 0 {
        if let Some(ix) = line.find("http://") {
            let rest = &line[ix + "http://".len()..];
            let end = rest.find(char::is_whitespace).unwrap_or(rest.len());
            addr = Some(rest[..end].to_string());
            break;
        }
        line.clear();
    }
    std::thread::spawn(move || {
        let mut sink = String::new();
        while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
            sink.clear();
        }
    });
    Proc { child, addr: addr.expect("daemon printed its bound address on stderr") }
}

fn spawn_shard() -> Proc {
    // Shard connections are evented, so workers bound concurrent request
    // execution, not how many router/backend connections can be open —
    // 8 keeps the hammer tests genuinely parallel on the shard side.
    let args: Vec<String> =
        ["--listen", "127.0.0.1:0", "--workers", "8"].map(String::from).to_vec();
    spawn(env!("CARGO_BIN_EXE_mhxd"), &args)
}

fn spawn_router(shards: &[&Proc], replicas: usize) -> Proc {
    let mut args: Vec<String> =
        ["--listen", "127.0.0.1:0", "--workers", "4"].map(String::from).to_vec();
    args.push("--replicas".into());
    args.push(replicas.to_string());
    for s in shards {
        args.push("--shard".into());
        args.push(s.addr.clone());
    }
    spawn(env!("CARGO_BIN_EXE_mhxr"), &args)
}

fn connect(addr: &str) -> Client {
    Client::connect(addr).expect("connect")
}

/// Upload a small single-hierarchy document through `client` whose first
/// word *is* the document id — so a routed query proves the router
/// fetched the right document, not just any document.
fn upload(client: &mut Client, id: &str) {
    let xml = format!("<r><w>{id}</w><w>x</w></r>");
    client.put_document(id, &[("w", &xml)]).expect("upload");
}

/// The marker word of `id` as served through `client`.
fn first_word(client: &mut Client, id: &str) -> Result<String, ClientError> {
    client.xpath(id, "string((/descendant::w)[1])").map(|out| out.serialized)
}

#[test]
fn routing_is_deterministic_and_scatter_gather_merges() {
    let s0 = spawn_shard();
    let s1 = spawn_shard();
    let router = spawn_router(&[&s0, &s1], 1);
    let mut client = connect(&router.addr);

    // Upload until both shards hold at least two documents (placement is
    // hash-driven, so the count per shard varies — the bounded loop kills
    // the astronomically-unlikely all-on-one-shard skew instead of
    // flaking on it).
    let mut uploaded = BTreeSet::new();
    for i in 0..40 {
        let id = format!("d{i}");
        upload(&mut client, &id);
        uploaded.insert(id);
        let held0 = connect(&s0.addr).documents().unwrap().len();
        let held1 = connect(&s1.addr).documents().unwrap().len();
        if held0 >= 2 && held1 >= 2 {
            break;
        }
    }

    // With --replicas 1 each document lives on exactly one shard: the
    // direct listings are disjoint and their union is what the router's
    // scatter/gather merge reports.
    let docs0: BTreeSet<String> = connect(&s0.addr).documents().unwrap().into_iter().collect();
    let docs1: BTreeSet<String> = connect(&s1.addr).documents().unwrap().into_iter().collect();
    assert!(docs0.intersection(&docs1).next().is_none(), "replicas=1 must not duplicate");
    assert!(docs0.len() >= 2 && docs1.len() >= 2, "both shards hold documents");
    let union: BTreeSet<String> = docs0.union(&docs1).cloned().collect();
    assert_eq!(union, uploaded);
    let merged: BTreeSet<String> = client.documents().unwrap().into_iter().collect();
    assert_eq!(merged, uploaded, "router /documents merges the shard listings");

    // Every document is queryable through the router, with its own
    // content (each answer embeds its id).
    for id in &uploaded {
        assert_eq!(first_word(&mut client, id).unwrap(), *id);
    }

    // Routing determinism: a *fresh* router over the same shard list —
    // no upload history, placement known only from the hash ring — must
    // find every document where the first router put it.
    let router2 = spawn_router(&[&s0, &s1], 1);
    let mut client2 = connect(&router2.addr);
    for id in &uploaded {
        assert_eq!(first_word(&mut client2, id).unwrap(), *id);
    }

    // Scatter/gather /stats: one row per shard plus router health.
    let stats = client2.stats().unwrap();
    let shards = stats.get("shards").and_then(Json::as_arr).unwrap();
    assert_eq!(shards.len(), 2);
    let backends =
        stats.get("router").and_then(|r| r.get("backends")).and_then(Json::as_arr).unwrap();
    assert_eq!(backends.len(), 2);
    let total_docs =
        stats.get("totals").and_then(|t| t.get("shard_documents")).and_then(Json::as_u64);
    assert_eq!(total_docs, Some(uploaded.len() as u64));
}

#[test]
fn killing_a_shard_fails_over_to_replicas_until_none_remain() {
    let mut shards = [spawn_shard(), spawn_shard(), spawn_shard()];
    let router = spawn_router(&[&shards[0], &shards[1], &shards[2]], 2);
    let mut client = connect(&router.addr);

    // Upload through the router; the response names the shards holding
    // each replica, so the failover assertions below are deterministic.
    let mut placements: Vec<(String, Vec<String>)> = Vec::new();
    for i in 0..12 {
        let id = format!("d{i}");
        let xml = format!("<r><w>{id}</w><w>x</w></r>");
        let body = Json::Obj(vec![(
            "hierarchies".into(),
            Json::Arr(vec![Json::Obj(vec![
                ("name".into(), Json::Str("w".into())),
                ("xml".into(), Json::Str(xml)),
            ])]),
        )]);
        let json = client.call("PUT", &format!("/documents/{id}"), Some(&body)).unwrap();
        assert_eq!(json.get("replicas").and_then(Json::as_u64), Some(2), "{json}");
        let holders = json
            .get("shards")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .filter_map(|s| s.as_str().map(str::to_string))
            .collect();
        placements.push((id, holders));
    }
    let victim = shards[0].addr.clone();
    assert!(
        placements.iter().any(|(_, held)| held.contains(&victim)),
        "12 uploads across 3 shards always land some replica on the victim"
    );

    // SIGKILL one shard — no drain, no goodbye. Every document must still
    // answer through the router via its surviving replica.
    shards[0].kill();
    for (id, _) in &placements {
        assert_eq!(first_word(&mut client, id).unwrap(), *id, "failover for {id}");
    }
    let stats = client.stats().unwrap();
    let failovers =
        stats.get("router").and_then(|r| r.get("failovers")).and_then(Json::as_u64).unwrap();
    assert!(failovers >= 1, "the dead shard's documents failed over: {stats}");
    let backends =
        stats.get("router").and_then(|r| r.get("backends")).and_then(Json::as_arr).unwrap();
    let dead = backends
        .iter()
        .find(|b| b.get("addr").and_then(Json::as_str) == Some(victim.as_str()))
        .unwrap();
    assert_eq!(dead.get("healthy").and_then(Json::as_bool), Some(false), "{stats}");

    // Kill the remaining shards: now every replica set is exhausted and
    // the router surfaces its distinct 502/bad_gateway — not a hang, not
    // a shutting_down masquerade.
    shards[1].kill();
    shards[2].kill();
    let err = first_word(&mut client, &placements[0].0).unwrap_err();
    match &err {
        ClientError::Server { status: 502, kind, .. } => assert_eq!(kind, "bad_gateway"),
        other => panic!("expected bad_gateway after total loss, got {other:?}"),
    }
    assert!(!err.is_retryable());
}

#[test]
fn graceful_shard_drain_never_truncates_a_routed_response() {
    let s0 = spawn_shard();
    let s1 = spawn_shard();
    let router = spawn_router(&[&s0, &s1], 2);
    let mut client = connect(&router.addr);

    let ids: Vec<String> = (0..4).map(|i| format!("d{i}")).collect();
    for id in &ids {
        upload(&mut client, id);
    }
    // Free the upload connection's router worker (and its backend
    // connections) before the hammer clients claim the pool.
    drop(client);

    // Hammer the router from four clients while one shard drains
    // mid-flight. Replication covers every document, so the router's
    // failover must hide the drain completely: every single response
    // arrives complete and correct.
    let router_addr = router.addr.clone();
    let workers: Vec<_> = ids
        .iter()
        .map(|id| {
            let id = id.clone();
            let addr = router_addr.clone();
            std::thread::spawn(move || {
                let mut client = connect(&addr);
                for round in 0..100 {
                    match first_word(&mut client, &id) {
                        Ok(word) => assert_eq!(word, id, "round {round}"),
                        Err(e) => panic!("round {round} for {id}: {e}"),
                    }
                }
                100u32
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(30));
    connect(&s1.addr).shutdown_server().expect("request drain");

    let completed: u32 = workers.into_iter().map(|w| w.join().expect("client thread")).sum();
    assert_eq!(completed, 400, "every request completed despite the drain");

    // The drained shard exits cleanly (drain completed, nothing
    // truncated server-side either).
    s1.wait_clean(Duration::from_secs(10));
}

#[test]
fn router_drains_promptly_under_an_idle_connection_fleet() {
    let s0 = spawn_shard();
    let router = spawn_router(&[&s0], 1);
    let mut client = connect(&router.addr);
    upload(&mut client, "fleet-doc");

    // Park 100 idle keep-alive connections on the router — far beyond its
    // 4 workers. Evented, they hold table entries, not worker threads.
    let mut fleet: Vec<TcpStream> = (0..100)
        .map(|_| {
            let s = TcpStream::connect(&router.addr).expect("park connection");
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            s
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let accepted = client
            .stats()
            .expect("stats")
            .get("router")
            .and_then(|r| r.get("connections_accepted"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        // The fleet plus this client's own connection.
        if accepted >= 101 {
            break;
        }
        assert!(Instant::now() < deadline, "fleet never fully accepted ({accepted})");
        std::thread::sleep(Duration::from_millis(20));
    }

    // A real request still routes while the fleet sits parked.
    assert_eq!(first_word(&mut client, "fleet-doc").expect("routed query"), "fleet-doc");

    // Drain: the router must close the whole idle fleet and exit within
    // the harness timeout, not linger on 100 dead-weight sockets.
    client.shutdown_server().expect("request drain");
    drop(client);
    router.wait_clean(Duration::from_secs(10));

    // Every parked connection saw a clean EOF, not a hang or garbage.
    for s in &mut fleet {
        let mut buf = [0u8; 64];
        assert_eq!(s.read(&mut buf).expect("fleet socket readable"), 0, "expected EOF");
    }
    // `s0` keeps serving — a router drain never touches the shards; its
    // `Drop` impl reaps the process.
}
