//! Integration tests for the persistent document store: snapshot
//! round-trips on random GODDAGs (write → read must preserve indexed
//! query results across the whole axis suite), lazy loading and
//! memory-budget eviction through the `Catalog`, a real `mhxd` restart
//! answering queries from the data dir without re-upload, corrupt
//! snapshots surfacing as typed engine errors, and the event loop's
//! idle keep-alive sweep.

use mhx_store::{DocStore, StoreError};
use multihier_xquery::corpus::{generate, GeneratorConfig};
use multihier_xquery::goddag::axes::Axis;
use multihier_xquery::goddag::StructIndex;
use multihier_xquery::prelude::*;
use multihier_xquery::server::client::Client;
use multihier_xquery::server::{Server, ServerConfig};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A unique scratch dir per call (proptest runs cases concurrently
/// across test threads; a shared dir would cross-contaminate).
fn scratch_dir() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("mhx-store-test-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        0u32..1000,
        (60usize..240),
        (1usize..4),
        (5usize..25),
        (0usize..=10),
        prop_oneof![Just(true), Just(false)],
    )
        .prop_map(|(seed, text_len, hierarchies, avg_element_len, jitter, nested)| {
            GeneratorConfig {
                seed: seed as u64,
                text_len,
                hierarchies,
                avg_element_len,
                boundary_jitter: jitter as f64 / 10.0,
                nested,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Write → read on random documents: the reloaded snapshot must
    /// answer every axis from every node exactly like the original,
    /// through its reconstructed index.
    #[test]
    fn snapshot_round_trip_preserves_indexed_query_results(cfg in arb_config()) {
        let g = generate(&cfg).build_goddag();
        let idx = StructIndex::build(&g);
        let dir = scratch_dir();
        let store = DocStore::open(&dir).expect("open scratch store");
        store.save("doc", &g, &idx).expect("save snapshot");
        let (g2, idx2) = store.load("doc").expect("load snapshot").expect("snapshot present");

        prop_assert_eq!(g.text(), g2.text());
        prop_assert_eq!(g.all_nodes(), g2.all_nodes());
        for &n in &g.all_nodes() {
            for axis in Axis::ALL {
                prop_assert_eq!(
                    idx.axis_nodes(&g, axis, n),
                    idx2.axis_nodes(&g2, axis, n),
                    "axis {} from {}", axis.name(), n
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Distinct documents for the catalog tests (different seeds → different
/// texts and overlap patterns, same e0/e1/… schema).
fn corpus_doc(i: usize) -> Goddag {
    generate(&GeneratorConfig {
        seed: 0xD0C + i as u64,
        text_len: 400,
        hierarchies: 2,
        boundary_jitter: 0.6,
        ..Default::default()
    })
    .build_goddag()
}

const CHURN_QUERIES: [&str; 2] = ["count(/descendant::e0)", "/descendant::e1[overlapping::e0]"];

/// Under a budget of a quarter of the corpus, a round-robin workload
/// forces evict/reload churn; every answer must match an unconstrained
/// catalog, and the counters must account for what happened.
#[test]
fn eviction_churn_keeps_answers_correct_and_counters_honest() {
    const N: usize = 6;
    let reference = Catalog::new();
    for i in 0..N {
        reference.insert(format!("doc-{i}"), corpus_doc(i));
    }

    let dir = scratch_dir();
    let constrained = Catalog::new();
    // Attach with no budget first to measure the corpus, then verify the
    // store refuses a second attach.
    let unbudgeted = Catalog::new();
    unbudgeted.attach_store(&dir, None).expect("attach");
    for i in 0..N {
        unbudgeted.put(format!("doc-{i}"), corpus_doc(i)).expect("persist");
    }
    let total = unbudgeted.store_stats().bytes_on_disk;
    assert!(total > 0);
    assert!(unbudgeted.attach_store(&dir, None).is_err(), "second attach must fail");

    constrained.attach_store(&dir, Some((total / 4).max(1))).expect("attach with budget");
    let mut loads_seen = 0u64;
    for round in 0..3 {
        for i in 0..N {
            for q in CHURN_QUERIES {
                let id = format!("doc-{i}");
                let want = reference.xpath(&id, q).expect("reference");
                let got = constrained.xpath(&id, q).expect("constrained");
                assert_eq!(got.serialize(), want.serialize(), "round {round}, {id}, `{q}`");
            }
        }
        loads_seen = constrained.store_stats().loads;
    }

    let stats = constrained.store_stats();
    assert!(stats.attached);
    assert_eq!(stats.bytes_on_disk, total, "churn never rewrites snapshots");
    // 6 docs under a quarter-budget: every round reloads evicted docs.
    assert!(stats.loads > N as u64, "expected reload churn, saw {} loads", stats.loads);
    assert!(stats.evictions > 0, "budget must force evictions");
    assert_eq!(stats.cold_start_hits, N as u64, "each disk-discovered doc loads cold once");
    assert!(stats.resident_bytes <= total, "resident set stays below the corpus");
    assert_eq!(loads_seen, stats.loads);

    // Residency report: with the budget a quarter of the corpus, some
    // documents must be evicted right now.
    let status = constrained.document_status();
    assert_eq!(status.len(), N);
    assert!(
        status.iter().any(|(_, r, _)| matches!(r, Residency::Evicted)),
        "some documents must be evicted under the budget"
    );
    assert!(status.iter().all(|(_, _, bytes)| *bytes > 0), "every doc has a snapshot");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Boot a server on a data dir, upload a document over the wire, shut
/// down; a second server on the same dir must answer a prepared query
/// with no re-upload, reporting the cold start in its counters.
#[test]
fn restarted_server_answers_prepared_query_without_reupload() {
    let dir = scratch_dir();
    let lines = "<r><line>gesceaftum unawendendne sin</line><line>gallice sibbe</line></r>";
    let words = "<r><w>gesceaftum</w> <w>unawendendne</w> <w>singallice</w> <w>sibbe</w></r>";

    let config = || ServerConfig {
        workers: 2,
        poll_interval: Duration::from_millis(10),
        ..ServerConfig::default()
    };

    {
        let catalog = Arc::new(Catalog::new());
        catalog.attach_store(&dir, None).expect("attach store");
        let server = Server::bind(catalog, "127.0.0.1:0", config()).expect("bind");
        let mut client = Client::connect(&server.addr().to_string()).expect("connect");
        client.put_document("ms", &[("lines", lines), ("words", words)]).expect("upload");
        let out = client.xpath("ms", "/descendant::w[overlapping::line]").expect("query");
        assert_eq!(out.serialized, "<w>singallice</w>");
        assert!(server.shutdown());
    }

    // Same data dir, fresh catalog: no uploads, no inserts.
    let catalog = Arc::new(Catalog::new());
    let replayed = catalog.attach_store(&dir, None).expect("attach store");
    assert_eq!(replayed, vec!["ms".to_string()]);
    let server = Server::bind(catalog, "127.0.0.1:0", config()).expect("bind");
    let mut client = Client::connect(&server.addr().to_string()).expect("connect");

    // The replayed document is evicted (on disk only) until first use.
    let status = client.document_status().expect("documents");
    assert_eq!(status.len(), 1);
    assert_eq!(status[0].0, "ms");
    assert_eq!(status[0].1, "evicted");
    assert!(status[0].2 > 0, "snapshot size is reported");

    let handle =
        client.prepare(QueryLang::XPath, "/descendant::w[overlapping::line]").expect("prepare");
    let out = client.execute(handle, Some("ms")).expect("execute on cold store");
    assert_eq!(out.serialized, "<w>singallice</w>");

    let stats = client.stats().expect("stats");
    let store = stats.get("store").expect("store section");
    let n = |key: &str| store.get(key).and_then(mhx_json::Json::as_u64).unwrap_or(0);
    assert_eq!(n("loads"), 1);
    assert_eq!(n("cold_start_hits"), 1);
    assert!(n("bytes_on_disk") > 0);
    assert_eq!(n("resident_docs"), 1);

    let status = client.document_status().expect("documents");
    assert_eq!(status[0].1, "resident", "first query makes the doc resident");
    assert!(server.shutdown());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corruption surfaces as a typed engine error — never a panic — and a
/// crash-leftover `.tmp` file is ignored at replay.
#[test]
fn corrupt_snapshot_is_a_typed_error_and_tmp_leftovers_are_ignored() {
    let dir = scratch_dir();
    {
        let catalog = Catalog::new();
        catalog.attach_store(&dir, None).expect("attach");
        catalog.put("ms", corpus_doc(0)).expect("persist");
    }

    // A crash mid-write leaves a bare .tmp file; replay must skip it.
    std::fs::write(dir.join("ghost.mhx.tmp"), b"half-written junk").expect("write tmp");

    // Flip one byte in the middle of the snapshot payload.
    let store = DocStore::open(&dir).expect("open");
    let path = store.path_for("ms");
    let mut bytes = std::fs::read(&path).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).expect("rewrite snapshot");

    // The store layer reports corruption, not a panic.
    match store.load("ms") {
        Err(StoreError::Corrupt { .. }) => {}
        other => panic!("expected corruption error, got {other:?}"),
    }

    // Through the catalog, the same corruption becomes a typed
    // EngineError::Store when the lazy load runs.
    let catalog = Catalog::new();
    let replayed = catalog.attach_store(&dir, None).expect("attach survives corruption");
    assert_eq!(replayed, vec!["ms".to_string()], "the .tmp leftover is not replayed");
    match catalog.xpath("ms", "count(/descendant::e0)") {
        Err(EngineError::Store { .. }) => {}
        other => panic!("expected EngineError::Store, got {other:?}"),
    }

    // A truncated snapshot behaves the same.
    std::fs::write(&path, &bytes[..40]).expect("truncate snapshot");
    let catalog = Catalog::new();
    catalog.attach_store(&dir, None).expect("attach");
    match catalog.xpath("ms", "count(/descendant::e0)") {
        Err(EngineError::Store { .. }) => {}
        other => panic!("expected EngineError::Store, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `max_idle` closes parked keep-alive connections (the satellite riding
/// the slow-loris sweep); busy and fresh connections are untouched.
#[test]
fn idle_keepalive_connections_are_swept() {
    let catalog = Arc::new(Catalog::new());
    catalog.insert(
        "ms",
        GoddagBuilder::new().hierarchy("w", "<r><w>a</w> <w>b</w></r>").build().unwrap(),
    );
    let server = Server::bind(
        catalog,
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            poll_interval: Duration::from_millis(10),
            max_idle: Some(Duration::from_millis(150)),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr().to_string();

    let mut idle = Client::connect(&addr).expect("connect");
    let out = idle.xpath("ms", "count(/descendant::w)").expect("first query");
    assert_eq!(out.serialized, "2");

    // Park past the idle bound: the server closes the connection, so the
    // next request on this client fails.
    std::thread::sleep(Duration::from_millis(600));
    assert!(
        idle.xpath("ms", "count(/descendant::w)").is_err(),
        "parked connection must have been closed by the idle sweep"
    );

    // The server itself is fine: a fresh connection works, and staying
    // under the idle bound keeps a connection alive across requests.
    let mut fresh = Client::connect(&addr).expect("reconnect");
    for _ in 0..4 {
        std::thread::sleep(Duration::from_millis(40));
        let out = fresh.xpath("ms", "count(/descendant::w)").expect("active connection");
        assert_eq!(out.serialized, "2");
    }
    assert!(server.shutdown());
}
