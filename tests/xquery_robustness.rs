//! Integration: engine robustness — deeply nested queries, large FLWOR
//! pipelines, error paths, and generated-document fuzzing at the query
//! level.

use multihier_xquery::corpus::{figure1, generate, GeneratorConfig};
use multihier_xquery::prelude::*;

#[test]
fn deeply_nested_flwor() {
    let g = figure1::goddag();
    let out = run_query(
        &g,
        "for $a in (1, 2) return \
           for $b in (1, 2) return \
             for $c in (1, 2) return \
               for $d in (1, 2) return \
                 concat($a, $b, $c, $d, ' ')",
    )
    .unwrap();
    assert_eq!(out.split_whitespace().count(), 16);
    assert!(out.starts_with("1111 "));
    assert!(out.trim_end().ends_with("2222"));
}

#[test]
fn long_pipeline_with_order_and_where() {
    let g = figure1::goddag();
    let out = run_query(
        &g,
        "for $l in /descendant::leaf() \
         let $len := string-length(string($l)) \
         where $len > 1 \
         order by $len descending, string($l) \
         return concat(string($l), ':', $len, ' ')",
    )
    .unwrap();
    // Longest leaves first: gesceaftum(10), endendne(8), gallice(7),
    // gecyn/sibbe(5,5 — alpha), una(3), de/in/þa(2,2,2 — alpha).
    assert_eq!(out, "gesceaftum:10 endendne:8 gallice:7 gecyn:5 sibbe:5 una:3 de:2 in:2 þa:2 ");
}

#[test]
fn query_errors_are_messages_not_panics() {
    let g = figure1::goddag();
    for bad in [
        "for $x in",
        "1 +",
        "//w[",
        "<a>{",
        "analyze-string(//w, '[')",
        "let $x := 1 return $y",
        "position()", // no focus
        "wat::w",
        "5/child::a",
        "count((1,2), 3)",
    ] {
        match run_query(&g, bad) {
            Err(e) => assert!(!e.msg.is_empty(), "{bad}"),
            Ok(out) => panic!("`{bad}` unexpectedly evaluated to {out:?}"),
        }
    }
}

#[test]
fn generated_documents_answer_structural_queries() {
    for seed in 0..5u64 {
        let doc = generate(&GeneratorConfig {
            seed,
            text_len: 400,
            hierarchies: 3,
            boundary_jitter: 0.7,
            nested: true,
            ..Default::default()
        });
        let g = doc.build_goddag();
        // Structural invariants expressed as queries.
        let leaves: usize = run_query(&g, "count(/descendant::leaf())").unwrap().parse().unwrap();
        assert_eq!(leaves, g.leaf_count());
        let total_text_len: usize =
            run_query(&g, "string-length(string(root()))").unwrap().parse().unwrap();
        assert_eq!(total_text_len, g.text().chars().count());
        // Every leaf has at least one element ancestor in each covering
        // hierarchy (here: h0 covers everything).
        let uncovered: usize =
            run_query(&g, "count(/descendant::leaf()[not(ancestor::node(\"h0\"))])")
                .unwrap()
                .parse()
                .unwrap();
        assert_eq!(uncovered, 0, "seed {seed}");
    }
}

#[test]
fn unicode_text_handled_end_to_end() {
    let g = GoddagBuilder::new()
        .hierarchy("a", "<r><w>þæt wæs gōd</w> <w>cyning</w></r>")
        .hierarchy("b", "<r><half>þæt wæs</half> <half>gōd cyning</half></r>")
        .build()
        .unwrap();
    assert_eq!(run_query(&g, "string-length(string(root()))").unwrap(), "18");
    // w1 "þæt wæs gōd" (0..15) properly overlaps half2 "gōd cyning"
    // (11..22); w2 "cyning" is *contained* in half2, so it does not.
    let out = run_query(&g, "for $w in //w[overlapping::half] return string($w)").unwrap();
    assert_eq!(out, "þæt wæs gōd");
    let hits = run_query(&g, "let $r := analyze-string(root(), 'wæs g') return count($r/child::m)")
        .unwrap();
    assert_eq!(hits, "1");
}

#[test]
fn whitespace_only_text_nodes_are_leaves_too() {
    let g = GoddagBuilder::new()
        .hierarchy("a", "<r><x>a</x> <x>b</x></r>")
        .hierarchy("b", "<r><y>a b</y></r>")
        .build()
        .unwrap();
    assert_eq!(g.leaf_count(), 3); // a, ␣, b
    assert_eq!(run_query(&g, "string((/descendant::leaf())[2])").unwrap(), " ");
}
