//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! No network access at build time, so this crate provides a small
//! wall-clock harness with criterion's surface: `Criterion`,
//! `benchmark_group` (with `sample_size` / `measurement_time` /
//! `throughput`), `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark is timed with
//! warmup-then-measure batches and a `name  time: [median]` line is
//! printed, one per benchmark, in criterion's spirit if not its format.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into().0, 20, Duration::from_millis(500), f);
        self
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Throughput annotation (recorded for API compatibility, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        run_bench(&full, self.sample_size, self.measurement_time, f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Passed to the measured closure; `iter` runs and times the payload.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    /// Median per-iteration time of the last `iter` call, if any.
    pub(crate) median_ns: Option<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: run until ~10% of the measurement budget.
        let warm_budget = self.measurement_time.mul_f64(0.1).max(Duration::from_millis(5));
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < warm_budget {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Split the remaining budget into `sample_size` batches.
        let budget = self.measurement_time.mul_f64(0.9).as_secs_f64();
        let iters_per_sample =
            ((budget / self.sample_size as f64 / per_iter).floor() as u64).max(1);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples.push(t0.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        self.median_ns = Some(samples[samples.len() / 2] * 1e9);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) {
    let mut b = Bencher { sample_size, measurement_time, median_ns: None };
    f(&mut b);
    match b.median_ns {
        Some(ns) => println!("{name:<56} time: [{}]", fmt_ns(ns)),
        None => println!("{name:<56} time: [no measurement]"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut grp = c.benchmark_group("shim");
        grp.sample_size(5).measurement_time(Duration::from_millis(20));
        grp.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        grp.bench_with_input(BenchmarkId::new("sum_to", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        grp.finish();
    }
}
