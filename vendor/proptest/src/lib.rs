//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no network access, so this crate re-implements
//! just enough of proptest to run the workspace's property tests:
//! deterministic case generation (seeded per test, stable across runs), the
//! `proptest!` / `prop_assert*` / `prop_oneof!` macros, `Just`, integer
//! ranges, tuples, `collection::vec`, `prop_map` / `prop_flat_map` /
//! `prop_recursive`, and a tiny `"[class]{lo,hi}"` string-pattern strategy.
//!
//! Deliberate differences from upstream: no shrinking (a failing case
//! reports its inputs via the assertion message instead), and no persisted
//! failure seeds.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod strategy {
    use super::*;

    /// Deterministic generator state (splitmix64-seeded xorshift128+).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s0: u64,
        s1: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> TestRng {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng { s0: next(), s1: next() }
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.s0;
            let y = self.s1;
            self.s0 = y;
            x ^= x << 23;
            self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
            self.s1.wrapping_add(y)
        }

        /// Uniform in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: usize) -> usize {
            debug_assert!(n > 0);
            (self.next_u64() % n as u64) as usize
        }
    }

    /// A value generator. Only `new_value` is required; every combinator is
    /// `Self: Sized` so the trait stays object-safe for [`BoxedStrategy`].
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Recursive strategies: `depth` bounds how many times `recurse`
        /// may wrap the base; the size hints are accepted for API
        /// compatibility and ignored.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
        {
            Recursive {
                base: self.boxed(),
                depth,
                recurse: Rc::new(move |inner| recurse(inner).boxed()),
            }
        }
    }

    /// Always produces a clone of its payload.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// Reference-counted type-erased strategy (cloneable, unlike upstream's
    /// `Box`-based one — upstream clones via `Arc` internally too).
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.new_value(rng)
        }
    }

    pub struct Recursive<T> {
        base: BoxedStrategy<T>,
        depth: u32,
        recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    }

    impl<T> Clone for Recursive<T> {
        fn clone(&self) -> Self {
            Recursive {
                base: self.base.clone(),
                depth: self.depth,
                recurse: Rc::clone(&self.recurse),
            }
        }
    }

    impl<T: 'static> Strategy for Recursive<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let levels = rng.below(self.depth as usize + 1);
            let mut s = self.base.clone();
            for _ in 0..levels {
                s = (self.recurse)(s);
            }
            s.new_value(rng)
        }
    }

    /// Uniform choice among boxed alternatives (the `prop_oneof!` backend).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union { arms: self.arms.clone() }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len());
            self.arms[i].new_value(rng)
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy on empty range");
                    let width = (self.end - self.start) as usize;
                    self.start + rng.below(width) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy on empty range");
                    let width = (hi - lo) as usize + 1;
                    lo + rng.below(width) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(usize, u8, u16, u32, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($(($($T:ident . $idx:tt),+))*) => {$(
            impl<$($T: Strategy),+> Strategy for ($($T,)+) {
                type Value = ($($T::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    }

    /// String-pattern strategies. Upstream interprets any regex; this shim
    /// supports exactly the `"[class]{lo,hi}"` shape the workspace uses
    /// (character lists with `-` ranges) and panics on anything else.
    impl Strategy for &str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            let (alphabet, lo, hi) = parse_class_repeat(self).unwrap_or_else(|| {
                panic!(
                    "proptest shim: unsupported string pattern {self:?} \
                     (only \"[class]{{lo,hi}}\" is implemented)"
                )
            });
            let len = lo + rng.below(hi - lo + 1);
            (0..len).map(|_| alphabet[rng.below(alphabet.len())]).collect()
        }
    }

    fn parse_class_repeat(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = counts.split_once(',')?;
        let (lo, hi) = (lo.parse().ok()?, hi.parse().ok()?);
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i], class[i + 2]);
                if a > b {
                    return None;
                }
                alphabet.extend((a..=b).filter(|c| !c.is_control() || *c == '\n'));
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() || lo > hi {
            return None;
        }
        Some((alphabet, lo, hi))
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec()`], inclusive on both ends.
    pub trait IntoSizeRange {
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { element, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.lo + rng.below(self.hi - self.lo + 1);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    use std::fmt;

    /// Runner configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    /// Failure raised by `prop_assert*` or returned from a test body.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, TestRng, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` != `{:?}`", lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` != `{:?}`: {}", lhs, rhs, format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs != *rhs, "assertion failed: `{:?}` == `{:?}`", lhs, rhs);
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($arm) ),+
        ])
    };
}

/// The test harness macro. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `fn name(binding in strategy, ...) { body }` items (with outer
/// attributes and doc comments preserved).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                // Stable per-test seed so failures reproduce across runs.
                let __test_seed: u64 = {
                    let name = concat!(module_path!(), "::", stringify!($name));
                    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                    for b in name.as_bytes() {
                        h ^= *b as u64;
                        h = h.wrapping_mul(0x0000_0100_0000_01B3);
                    }
                    h
                };
                for __case in 0..__config.cases {
                    let mut __rng = $crate::strategy::TestRng::from_seed(
                        __test_seed ^ ((__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);
                    )+
                    let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match __result {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err(e) => {
                            panic!("proptest case {} of {} failed: {}", __case + 1, __config.cases, e);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in 2usize..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((2..=5).contains(&y));
        }

        #[test]
        fn flat_map_dependent(pair in (1usize..6).prop_flat_map(|n| (Just(n), n..n + 3))) {
            let (n, m) = pair;
            prop_assert!(m >= n && m < n + 3);
        }

        #[test]
        fn vec_and_oneof(v in crate::collection::vec(prop_oneof![Just(1), Just(2)], 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
        }

        #[test]
        fn string_pattern(s in "[ab]{2,4}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            prop_assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }
    }

    #[test]
    fn string_pattern_ranges() {
        let mut rng = crate::strategy::TestRng::from_seed(9);
        let s = crate::strategy::Strategy::new_value(&"[ -~]{0,24}", &mut rng);
        assert!(s.chars().all(|c| (' '..='~').contains(&c)));
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf,
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = Just(T::Leaf).prop_recursive(3, 16, 3, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(T::Node)
        });
        let mut rng = crate::strategy::TestRng::from_seed(11);
        for _ in 0..100 {
            let t = strat.new_value(&mut rng);
            assert!(depth(&t) <= 3 + 1);
        }
    }
}
