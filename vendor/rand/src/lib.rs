//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no network access, so instead of the real
//! crate we vendor a deterministic xoshiro256**-based `StdRng` with
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` (over integer ranges),
//! and `Rng::gen_bool`. Sequences differ from upstream `rand`, but every
//! consumer in this workspace seeds explicitly and only needs stable,
//! well-mixed streams — not upstream-compatible ones.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable constructor, `rand`-style.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 uniform mantissa bits, the usual open-interval construction.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled uniformly.
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (uniform_below(rng, width) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let width = (hi as u128) - (lo as u128) + 1;
                if width > u64::MAX as u128 {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (uniform_below(rng, width as u64) as $t)
            }
        }
    )*};
}

impl_sample_range!(usize, u8, u16, u32, u64, i32, i64);

/// Unbiased uniform draw in `[0, n)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let threshold = n.wrapping_neg() % n;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let m = (v as u128) * (n as u128);
            ((m >> 64) as u64, m as u64)
        };
        if lo >= threshold {
            return hi;
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1..=4);
            assert!((1..=4).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
